//! Axis-aligned rectangles with the min/max distance functions (the paper's
//! `δ(S, T)` and `Δ(S, T)`).

use crate::point::Point;
use std::fmt;

/// An axis-aligned rectangle, stored as its lower-left (`min`) and upper-right
/// (`max`) corners. Invariant: `min.x <= max.x` and `min.y <= max.y`.
///
/// Rectangles are *closed*: a point on the boundary is contained. Degenerate
/// rectangles (zero width and/or height) are allowed; they arise naturally as
/// safe regions of objects that sit exactly on a quarantine boundary.
#[derive(Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// The unit square `[0,1] x [0,1]` — the space of the paper's evaluation.
    pub const UNIT: Rect = Rect { min: Point { x: 0.0, y: 0.0 }, max: Point { x: 1.0, y: 1.0 } };

    /// Creates a rectangle from its lower-left and upper-right corners.
    ///
    /// # Panics
    /// Panics in debug builds if `min` is not component-wise `<= max` or the
    /// coordinates are not finite.
    #[inline]
    pub fn new(min: Point, max: Point) -> Self {
        debug_assert!(min.is_finite() && max.is_finite(), "non-finite rect corners");
        debug_assert!(min.x <= max.x && min.y <= max.y, "inverted rect {min:?}..{max:?}");
        Rect { min, max }
    }

    /// Creates a rectangle from any two opposite corners (normalizing order).
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect::new(a.min(b), a.max(b))
    }

    /// The degenerate rectangle containing exactly `p`.
    #[inline]
    pub fn point(p: Point) -> Self {
        Rect::new(p, p)
    }

    /// A rectangle centered at `c` with half-extents `hx` and `hy`.
    #[inline]
    pub fn centered(c: Point, hx: f64, hy: f64) -> Self {
        debug_assert!(hx >= 0.0 && hy >= 0.0);
        Rect::new(Point::new(c.x - hx, c.y - hy), Point::new(c.x + hx, c.y + hy))
    }

    /// The lower-left corner.
    #[inline]
    pub fn min(&self) -> Point {
        self.min
    }

    /// The upper-right corner.
    #[inline]
    pub fn max(&self) -> Point {
        self.max
    }

    /// Extent along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Extent along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// The center point.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.min.x + self.max.x) * 0.5, (self.min.y + self.max.y) * 0.5)
    }

    /// Perimeter — the quantity Theorem 5.1 says safe regions should maximize.
    #[inline]
    pub fn perimeter(&self) -> f64 {
        2.0 * (self.width() + self.height())
    }

    /// Area (zero for degenerate rectangles).
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Closed containment test for a point.
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True when `other` lies entirely inside `self` (boundaries may touch).
    #[inline]
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// Closed intersection test (shared boundaries count as intersecting).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// True when the intersection has strictly positive area — the paper's
    /// notion of *overlap* for quarantine areas and safe regions.
    #[inline]
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.min.x < other.max.x
            && other.min.x < self.max.x
            && self.min.y < other.max.y
            && other.min.y < self.max.y
    }

    /// Intersection rectangle, or `None` when disjoint.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let min = self.min.max(other.min);
        let max = self.max.min(other.max);
        if min.x <= max.x && min.y <= max.y {
            Some(Rect { min, max })
        } else {
            None
        }
    }

    /// The smallest rectangle containing both `self` and `other` (MBR union).
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect { min: self.min.min(other.min), max: self.max.max(other.max) }
    }

    /// The smallest rectangle containing `self` and the point `p`.
    #[inline]
    pub fn union_point(&self, p: Point) -> Rect {
        Rect { min: self.min.min(p), max: self.max.max(p) }
    }

    /// Grows the rectangle by `margin` on every side (clamped to stay valid).
    #[inline]
    pub fn inflate(&self, margin: f64) -> Rect {
        let r = Rect {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        };
        if r.min.x <= r.max.x && r.min.y <= r.max.y {
            r
        } else {
            Rect::point(self.center())
        }
    }

    /// Minimum distance `δ(p, R)` from a point to this rectangle
    /// (zero when the point is inside).
    #[inline]
    pub fn min_dist(&self, p: Point) -> f64 {
        self.min_dist_sq(p).sqrt()
    }

    /// Squared minimum distance (cheaper; used as a best-first search key).
    #[inline]
    pub fn min_dist_sq(&self, p: Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx * dx + dy * dy
    }

    /// Maximum distance `Δ(p, R)` from a point to this rectangle — the
    /// distance to the farthest corner.
    #[inline]
    pub fn max_dist(&self, p: Point) -> f64 {
        self.max_dist_sq(p).sqrt()
    }

    /// Squared maximum distance.
    #[inline]
    pub fn max_dist_sq(&self, p: Point) -> f64 {
        let dx = (p.x - self.min.x).abs().max((self.max.x - p.x).abs());
        let dy = (p.y - self.min.y).abs().max((self.max.y - p.y).abs());
        dx * dx + dy * dy
    }

    /// Minimum distance between two rectangles (`δ(S, T)` for rectangles).
    #[inline]
    pub fn min_dist_rect(&self, other: &Rect) -> f64 {
        let dx = (self.min.x - other.max.x).max(0.0).max(other.min.x - self.max.x);
        let dy = (self.min.y - other.max.y).max(0.0).max(other.min.y - self.max.y);
        (dx * dx + dy * dy).sqrt()
    }

    /// Maximum distance between two rectangles (`Δ(S, T)` for rectangles).
    #[inline]
    pub fn max_dist_rect(&self, other: &Rect) -> f64 {
        let dx = (self.max.x - other.min.x).abs().max((other.max.x - self.min.x).abs());
        let dy = (self.max.y - other.min.y).abs().max((other.max.y - self.min.y).abs());
        (dx * dx + dy * dy).sqrt()
    }

    /// The four corners, counter-clockwise from the lower-left.
    #[inline]
    pub fn corners(&self) -> [Point; 4] {
        [self.min, Point::new(self.max.x, self.min.y), self.max, Point::new(self.min.x, self.max.y)]
    }

    /// Clamps `p` to the nearest point inside the rectangle.
    #[inline]
    pub fn clamp_point(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.min.x, self.max.x), p.y.clamp(self.min.y, self.max.y))
    }

    /// The set difference `self \ other` as up to four disjoint rectangles
    /// (left, right, bottom, top slabs). Degenerate (zero-area) pieces are
    /// omitted.
    pub fn difference(&self, other: &Rect) -> Vec<Rect> {
        let Some(cap) = self.intersection(other) else {
            return vec![*self];
        };
        let mut out = Vec::with_capacity(4);
        if cap.min.x > self.min.x {
            out.push(Rect::new(self.min, Point::new(cap.min.x, self.max.y)));
        }
        if cap.max.x < self.max.x {
            out.push(Rect::new(Point::new(cap.max.x, self.min.y), self.max));
        }
        if cap.min.y > self.min.y {
            out.push(Rect::new(
                Point::new(cap.min.x, self.min.y),
                Point::new(cap.max.x, cap.min.y),
            ));
        }
        if cap.max.y < self.max.y {
            out.push(Rect::new(
                Point::new(cap.min.x, cap.max.y),
                Point::new(cap.max.x, self.max.y),
            ));
        }
        out.retain(|r| r.area() > 0.0);
        out
    }

    /// Minimum distance from `p` to the closure of `self \ other`, or
    /// `None` when the difference is empty (`other` covers `self`). Used to
    /// compute how soon a reachability circle anchored at `p` could escape
    /// `other` while staying inside `self`.
    pub fn escape_dist(&self, p: Point, other: &Rect) -> Option<f64> {
        let pieces = self.difference(other);
        pieces.iter().map(|r| r.min_dist(p)).min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// Increase in perimeter if this rectangle were enlarged to contain
    /// `other` (used by R-tree insertion heuristics).
    #[inline]
    pub fn perimeter_enlargement(&self, other: &Rect) -> f64 {
        self.union(other).perimeter() - self.perimeter()
    }

    /// Increase in area if this rectangle were enlarged to contain `other`.
    #[inline]
    pub fn area_enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Area of the intersection (zero when disjoint).
    #[inline]
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let w = (self.max.x.min(other.max.x) - self.min.x.max(other.min.x)).max(0.0);
        let h = (self.max.y.min(other.max.y) - self.min.y.max(other.min.y)).max(0.0);
        w * h
    }
}

impl fmt::Debug for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.6},{:.6}]x[{:.6},{:.6}]", self.min.x, self.max.x, self.min.y, self.max.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x1: f64, y1: f64, x2: f64, y2: f64) -> Rect {
        Rect::new(Point::new(x1, y1), Point::new(x2, y2))
    }

    #[test]
    fn basic_measures() {
        let a = r(0.0, 0.0, 2.0, 1.0);
        assert_eq!(a.width(), 2.0);
        assert_eq!(a.height(), 1.0);
        assert_eq!(a.perimeter(), 6.0);
        assert_eq!(a.area(), 2.0);
        assert_eq!(a.center(), Point::new(1.0, 0.5));
    }

    #[test]
    fn containment_is_closed() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert!(a.contains_point(Point::new(0.0, 0.0)));
        assert!(a.contains_point(Point::new(1.0, 1.0)));
        assert!(a.contains_point(Point::new(0.5, 1.0)));
        assert!(!a.contains_point(Point::new(1.0 + 1e-12, 0.5)));
    }

    #[test]
    fn intersects_vs_overlaps_boundary() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.0, 0.0, 2.0, 1.0); // shares an edge
        assert!(a.intersects(&b));
        assert!(!a.overlaps(&b));
        let c = r(0.9, 0.9, 2.0, 2.0);
        assert!(a.overlaps(&c));
    }

    #[test]
    fn intersection_and_union() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.intersection(&b), Some(r(1.0, 1.0, 2.0, 2.0)));
        assert_eq!(a.union(&b), r(0.0, 0.0, 3.0, 3.0));
        let c = r(5.0, 5.0, 6.0, 6.0);
        assert_eq!(a.intersection(&c), None);
    }

    #[test]
    fn min_dist_zero_inside_and_axis_outside() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(a.min_dist(Point::new(0.5, 0.5)), 0.0);
        assert_eq!(a.min_dist(Point::new(2.0, 0.5)), 1.0);
        assert!((a.min_dist(Point::new(2.0, 2.0)) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn max_dist_reaches_farthest_corner() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        // from the center, farthest corner is at distance sqrt(0.5)
        assert!((a.max_dist(Point::new(0.5, 0.5)) - 0.5f64.sqrt()).abs() < 1e-12);
        // from a corner, the opposite corner
        assert!((a.max_dist(Point::new(0.0, 0.0)) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn min_dist_le_max_dist_on_samples() {
        let a = r(0.2, 0.3, 0.7, 0.9);
        for &p in &[
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.5),
            Point::new(1.0, 0.2),
            Point::new(0.25, 2.0),
        ] {
            assert!(a.min_dist(p) <= a.max_dist(p));
        }
    }

    #[test]
    fn rect_to_rect_distances() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, 0.0, 3.0, 1.0);
        assert_eq!(a.min_dist_rect(&b), 1.0);
        assert_eq!(a.max_dist_rect(&b), (9.0f64 + 1.0).sqrt());
        assert_eq!(a.min_dist_rect(&a), 0.0);
    }

    #[test]
    fn degenerate_point_rect() {
        let p = Point::new(0.3, 0.4);
        let a = Rect::point(p);
        assert_eq!(a.area(), 0.0);
        assert!(a.contains_point(p));
        assert_eq!(a.min_dist(p), 0.0);
        assert_eq!(a.max_dist(p), 0.0);
    }

    #[test]
    fn clamp_point_projects() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(a.clamp_point(Point::new(2.0, -1.0)), Point::new(1.0, 0.0));
        assert_eq!(a.clamp_point(Point::new(0.5, 0.5)), Point::new(0.5, 0.5));
    }

    #[test]
    fn difference_partitions_area() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(0.25, 0.25, 0.75, 0.75);
        let d = a.difference(&b);
        assert_eq!(d.len(), 4);
        let sum: f64 = d.iter().map(Rect::area).sum();
        assert!((sum - (a.area() - b.area())).abs() < 1e-12);
        for piece in &d {
            assert!(!piece.overlaps(&b), "{piece:?} overlaps the subtrahend");
            assert!(a.contains_rect(piece));
        }
    }

    #[test]
    fn difference_disjoint_and_covering() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(a.difference(&r(2.0, 2.0, 3.0, 3.0)), vec![a]);
        assert!(a.difference(&r(-1.0, -1.0, 2.0, 2.0)).is_empty());
    }

    #[test]
    fn difference_edge_overlap() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let d = a.difference(&r(0.5, 0.0, 2.0, 1.0));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0], r(0.0, 0.0, 0.5, 1.0));
    }

    #[test]
    fn escape_dist_basics() {
        let sr = r(0.0, 0.0, 1.0, 1.0);
        let rect = r(0.25, 0.25, 0.75, 0.75);
        // From the center of `rect`: nearest escape is 0.25 away.
        let e = sr.escape_dist(Point::new(0.5, 0.5), &rect).unwrap();
        assert!((e - 0.25).abs() < 1e-12);
        // When `rect` covers the whole safe region there is no escape.
        assert!(sr.escape_dist(Point::new(0.5, 0.5), &sr).is_none());
    }

    #[test]
    fn enlargement_metrics() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, 0.0, 3.0, 1.0);
        assert_eq!(a.area_enlargement(&b), 2.0);
        assert_eq!(a.perimeter_enlargement(&b), 4.0);
        assert_eq!(a.overlap_area(&b), 0.0);
        assert_eq!(a.overlap_area(&r(0.5, 0.5, 1.5, 1.5)), 0.25);
    }
}
