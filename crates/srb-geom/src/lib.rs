//! # srb-geom
//!
//! Geometry primitives and inscribed-rectangle (*Ir-lp*) computations for the
//! safe-region-based monitoring framework of Hu, Xu & Lee (SIGMOD 2005),
//! *A Generic Framework for Monitoring Continuous Spatial Queries over
//! Moving Objects*.
//!
//! The crate provides:
//!
//! - [`Point`], [`Rect`], [`Circle`], [`Ring`] with the paper's `δ`/`Δ`
//!   (minimum / maximum) distance functions;
//! - the four *Ir-lp* constructions of §5 ([`irlp_circle`],
//!   [`irlp_circle_complement`], [`irlp_ring`],
//!   [`irlp_rect_complement_batch`]) that turn quarantine constraints into
//!   maximal-perimeter safe-region rectangles;
//! - perimeter objectives ([`OrdinaryPerimeter`] for Theorem 5.1,
//!   [`WeightedPerimeter`] for the §6.2 steady-movement enhancement).
//!
//! Everything is deterministic, allocation-light, and independent of the
//! rest of the framework; higher layers (`srb-index`, `srb-core`) build on
//! these primitives.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod circle;
pub mod irlp;
mod objective;
mod point;
mod rect;

pub use circle::{Circle, Ring};
pub use irlp::{irlp_circle, irlp_circle_complement, irlp_rect_complement_batch, irlp_ring};
pub use objective::{
    better_of, optimize_theta, ClearanceObjective, OrdinaryPerimeter, PerimeterObjective,
    WeightedPerimeter, THETA_SEARCH_STEPS,
};
pub use point::Point;
pub use rect::Rect;
