//! Circles and rings — the shapes of kNN quarantine areas (§3.3) and of the
//! order-sensitive kNN safe-region constraint (§5.2).

use crate::point::Point;
use crate::rect::Rect;

/// A circle (disc). Like rectangles, discs are *closed*: boundary points are
/// contained.
#[derive(Clone, Copy, PartialEq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Circle {
    /// Center of the disc.
    pub center: Point,
    /// Radius (non-negative).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle; the radius must be non-negative and finite.
    #[inline]
    pub fn new(center: Point, radius: f64) -> Self {
        debug_assert!(radius >= 0.0 && radius.is_finite(), "bad radius {radius}");
        Circle { center, radius }
    }

    /// Closed containment test.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.center.dist_sq(p) <= self.radius * self.radius
    }

    /// Minimum distance from `p` to the disc (zero inside).
    #[inline]
    pub fn min_dist(&self, p: Point) -> f64 {
        (self.center.dist(p) - self.radius).max(0.0)
    }

    /// Maximum distance from `p` to the disc.
    #[inline]
    pub fn max_dist(&self, p: Point) -> f64 {
        self.center.dist(p) + self.radius
    }

    /// Axis-aligned bounding box.
    #[inline]
    pub fn bbox(&self) -> Rect {
        Rect::centered(self.center, self.radius, self.radius)
    }

    /// True when the rectangle lies entirely inside the disc.
    ///
    /// Uses a 1e-9 absolute tolerance on the radius: Ir-lp construction
    /// places rectangle corners exactly on the circle via trigonometric
    /// identities, so ulp-level excursions must not flip the answer.
    #[inline]
    pub fn contains_rect(&self, r: &Rect) -> bool {
        let rad = self.radius + 1e-9;
        let rr = rad * rad;
        r.corners().iter().all(|&c| self.center.dist_sq(c) <= rr)
    }

    /// True when the rectangle and the *open* disc share a point with
    /// positive measure — i.e. the rectangle pokes strictly inside the
    /// circle. A rectangle merely touching the boundary does not overlap.
    #[inline]
    pub fn overlaps_rect(&self, r: &Rect) -> bool {
        r.min_dist(self.center) < self.radius
    }

    /// True when the rectangle intersects the closed disc at all.
    #[inline]
    pub fn intersects_rect(&self, r: &Rect) -> bool {
        r.min_dist(self.center) <= self.radius
    }
}

/// An annulus: the set of points whose distance from `center` lies in
/// `[inner, outer]`. `inner == 0` degenerates to a disc.
#[derive(Clone, Copy, PartialEq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ring {
    /// Center of the annulus.
    pub center: Point,
    /// Inner radius.
    pub inner: f64,
    /// Outer radius (`>= inner`).
    pub outer: f64,
}

impl Ring {
    /// Creates a ring; requires `0 <= inner <= outer`.
    #[inline]
    pub fn new(center: Point, inner: f64, outer: f64) -> Self {
        debug_assert!(
            inner >= 0.0 && inner <= outer && outer.is_finite(),
            "bad ring radii inner={inner} outer={outer}"
        );
        Ring { center, inner, outer }
    }

    /// Closed containment test.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        let d2 = self.center.dist_sq(p);
        d2 >= self.inner * self.inner && d2 <= self.outer * self.outer
    }

    /// True when the rectangle lies entirely within the ring: inside the
    /// outer disc and outside the open inner disc.
    #[inline]
    pub fn contains_rect(&self, r: &Rect) -> bool {
        let outer_ok = Circle::new(self.center, self.outer).contains_rect(r);
        let inner_ok = r.min_dist(self.center) >= self.inner - 1e-9;
        outer_ok && inner_ok
    }

    /// The outer circle.
    #[inline]
    pub fn outer_circle(&self) -> Circle {
        Circle::new(self.center, self.outer)
    }

    /// The inner circle.
    #[inline]
    pub fn inner_circle(&self) -> Circle {
        Circle::new(self.center, self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle_containment_closed() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        assert!(c.contains(Point::new(1.0, 0.0)));
        assert!(c.contains(Point::new(0.0, 0.0)));
        assert!(!c.contains(Point::new(1.0 + 1e-9, 0.0)));
    }

    #[test]
    fn circle_distances() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        assert_eq!(c.min_dist(Point::new(3.0, 0.0)), 2.0);
        assert_eq!(c.min_dist(Point::new(0.5, 0.0)), 0.0);
        assert_eq!(c.max_dist(Point::new(3.0, 0.0)), 4.0);
    }

    #[test]
    fn circle_rect_relations() {
        let c = Circle::new(Point::new(0.0, 0.0), 1.0);
        // Small rect near the center: contained.
        let inside = Rect::centered(Point::new(0.0, 0.0), 0.5, 0.5);
        assert!(c.contains_rect(&inside));
        assert!(c.overlaps_rect(&inside));
        // The inscribed square at 45 degrees: corners exactly on the circle.
        let h = (0.5f64).sqrt();
        let inscribed = Rect::centered(Point::new(0.0, 0.0), h, h);
        assert!(c.contains_rect(&inscribed));
        // A rect tangent from outside: intersects but does not overlap.
        let tangent = Rect::new(Point::new(1.0, -0.5), Point::new(2.0, 0.5));
        assert!(c.intersects_rect(&tangent));
        assert!(!c.overlaps_rect(&tangent));
        // A far rect.
        let far = Rect::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert!(!c.intersects_rect(&far));
        assert!(!c.contains_rect(&far));
    }

    #[test]
    fn ring_containment() {
        let r = Ring::new(Point::new(0.0, 0.0), 1.0, 2.0);
        assert!(r.contains(Point::new(1.5, 0.0)));
        assert!(r.contains(Point::new(1.0, 0.0)));
        assert!(r.contains(Point::new(2.0, 0.0)));
        assert!(!r.contains(Point::new(0.5, 0.0)));
        assert!(!r.contains(Point::new(2.5, 0.0)));
    }

    #[test]
    fn ring_contains_rect() {
        let ring = Ring::new(Point::new(0.0, 0.0), 1.0, 3.0);
        let good = Rect::new(Point::new(1.2, 0.1), Point::new(2.0, 1.0));
        assert!(ring.contains_rect(&good));
        let pokes_inner = Rect::new(Point::new(0.5, 0.1), Point::new(2.0, 1.0));
        assert!(!ring.contains_rect(&pokes_inner));
        let pokes_outer = Rect::new(Point::new(1.2, 0.1), Point::new(4.0, 1.0));
        assert!(!ring.contains_rect(&pokes_outer));
    }

    #[test]
    fn degenerate_ring_is_disc() {
        let r = Ring::new(Point::new(0.0, 0.0), 0.0, 1.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(0.7, 0.7)));
    }
}
