//! Perimeter objectives for safe-region maximization.
//!
//! Theorem 5.1 shows that, for an object moving in a uniformly random
//! direction, minimizing the expected location-update rate is equivalent to
//! maximizing the *perimeter* of the (convex) safe region. Section 6.2
//! replaces the uniform direction assumption with a *steady movement* model
//! and derives a *weighted* perimeter; plugging a different objective into
//! the same Ir-lp searches yields the enhanced safe regions.

use crate::point::Point;
use crate::rect::Rect;
use std::f64::consts::PI;

/// A scoring function over candidate safe-region rectangles. Larger is
/// better. Implementations must be deterministic and finite for any valid
/// rectangle.
pub trait PerimeterObjective {
    /// Scores a candidate rectangle.
    fn score(&self, rect: &Rect) -> f64;

    /// True when the closed-form optimum of the *ordinary* perimeter also
    /// optimizes this objective, letting Ir-lp searches skip the numeric
    /// θ-search. Only the plain perimeter returns true.
    fn is_ordinary(&self) -> bool {
        false
    }
}

/// The ordinary perimeter `2(w + h)` of Theorem 5.1.
#[derive(Clone, Copy, Debug, Default)]
pub struct OrdinaryPerimeter;

impl PerimeterObjective for OrdinaryPerimeter {
    #[inline]
    fn score(&self, rect: &Rect) -> f64 {
        rect.perimeter()
    }

    #[inline]
    fn is_ordinary(&self) -> bool {
        true
    }
}

/// The weighted perimeter of §6.2 under the steady-movement assumption.
///
/// The object updated its location at `p`, having arrived from `p_lst`; the
/// direction `p_lst → p` is expected to persist. Directions within ±90° of it
/// are weighted `1 + d`, the rest `1 - d`, where `d ∈ [0, 1]` is the
/// *steadiness* parameter. The paper's fast approximation replaces the
/// rectangle by a circle of equal perimeter and computes
///
/// ```text
/// λw = (1 + d)·λ − (2dλ/π)·arccos(2π·dist·cosβ / λ)
/// ```
///
/// where `λ` is the ordinary perimeter, `dist` the distance from `p` to the
/// rectangle center, and `β` the angle between `p → center` and `p_lst → p`.
#[derive(Clone, Copy, Debug)]
pub struct WeightedPerimeter {
    /// The just-updated location of the object.
    pub p: Point,
    /// The previously reported location (defines the movement direction).
    pub p_lst: Point,
    /// Steadiness `d ∈ [0, 1]`; `0` reduces to the ordinary perimeter.
    pub steadiness: f64,
}

impl WeightedPerimeter {
    /// Creates the objective; steadiness is clamped to `[0, 1]`.
    pub fn new(p: Point, p_lst: Point, steadiness: f64) -> Self {
        WeightedPerimeter { p, p_lst, steadiness: steadiness.clamp(0.0, 1.0) }
    }
}

impl PerimeterObjective for WeightedPerimeter {
    fn score(&self, rect: &Rect) -> f64 {
        let lambda = rect.perimeter();
        if lambda <= 0.0 || self.steadiness == 0.0 {
            return lambda;
        }
        let dir = self.p - self.p_lst;
        let Some(dir) = dir.normalized() else {
            // No movement direction known: uniform assumption.
            return lambda;
        };
        let o = rect.center();
        let po = o - self.p;
        let dist = po.norm();
        // cos β, where β is the angle between p→o and the movement direction.
        let cos_beta = if dist > 0.0 { po.dot(dir) / dist } else { 0.0 };
        let arg = (2.0 * PI * dist * cos_beta / lambda).clamp(-1.0, 1.0);
        (1.0 + self.steadiness) * lambda - (2.0 * self.steadiness * lambda / PI) * arg.acos()
    }
}

/// Weights an inner objective by the *clearance* of a designated point from
/// the rectangle boundary.
///
/// Pure perimeter maximization (Theorem 5.1) frequently returns rectangles
/// with the containment constraint active — `p` exactly on an edge — or
/// sliver-shaped regions hugging `p`, because a long thin rectangle can
/// out-perimeter a fat one. Under the theorem's uniform-direction model
/// that is fine *in expectation*, but an object moving toward the touching
/// edge must update immediately and continuously. Multiplying the score by
/// `min(1, clearance/scale)` prefers regions that keep `p` at least `scale`
/// away from every edge whenever such a region exists, bounding the
/// worst-case update rate at a negligible perimeter cost (see DESIGN.md).
#[derive(Clone, Copy, Debug)]
pub struct ClearanceObjective<O> {
    /// The underlying perimeter objective.
    pub inner: O,
    /// The point whose clearance is protected (the object location).
    pub p: Point,
    /// Clearance at which the factor saturates at 1.
    pub scale: f64,
}

impl<O: PerimeterObjective> ClearanceObjective<O> {
    /// Wraps `inner`, protecting the clearance of `p` up to `scale`.
    pub fn new(inner: O, p: Point, scale: f64) -> Self {
        ClearanceObjective { inner, p, scale: scale.max(1e-12) }
    }
}

impl<O: PerimeterObjective> PerimeterObjective for ClearanceObjective<O> {
    fn score(&self, rect: &Rect) -> f64 {
        let md = (self.p.x - rect.min().x)
            .min(rect.max().x - self.p.x)
            .min(self.p.y - rect.min().y)
            .min(rect.max().y - self.p.y)
            .max(0.0);
        let factor = (md / self.scale).clamp(1e-6, 1.0);
        self.inner.score(rect) * factor
    }
}

/// Number of ternary-search refinement steps used by [`optimize_theta`] for
/// non-ordinary objectives (the paper's §6.2 "binary search strategy").
pub const THETA_SEARCH_STEPS: usize = 24;

/// Finds a θ in `[lo, hi]` (approximately) maximizing
/// `objective.score(&rect_of(θ))`, and returns the winning rectangle.
///
/// For the ordinary perimeter the caller should pass the closed-form optimum
/// as `preferred`; it is clamped into range and evaluated together with both
/// endpoints. For other objectives a bounded ternary search refines the
/// interval (the optimum has no closed form under the weighted perimeter —
/// §6.2), and the same three candidates are evaluated at the end.
///
/// Returns `None` when the interval is empty (`lo > hi`) or `rect_of` yields
/// no rectangle anywhere in it.
pub fn optimize_theta<O, F>(
    lo: f64,
    hi: f64,
    preferred: f64,
    objective: &O,
    rect_of: F,
) -> Option<Rect>
where
    O: PerimeterObjective + ?Sized,
    F: Fn(f64) -> Option<Rect>,
{
    // NaN-propagating emptiness check: an invalid (NaN) bound must also
    // yield no rectangle, which `lo > hi` alone would miss.
    if lo.partial_cmp(&hi).is_none_or(|o| o == std::cmp::Ordering::Greater) {
        return None;
    }
    let mut candidates: Vec<f64> = vec![lo, hi, preferred.clamp(lo, hi)];
    if !objective.is_ordinary() && hi - lo > 1e-12 {
        // Ternary search on the (near-unimodal) weighted objective.
        let (mut a, mut b) = (lo, hi);
        for _ in 0..THETA_SEARCH_STEPS {
            let m1 = a + (b - a) / 3.0;
            let m2 = b - (b - a) / 3.0;
            let s1 = rect_of(m1).map(|r| objective.score(&r)).unwrap_or(f64::NEG_INFINITY);
            let s2 = rect_of(m2).map(|r| objective.score(&r)).unwrap_or(f64::NEG_INFINITY);
            if s1 < s2 {
                a = m1;
            } else {
                b = m2;
            }
        }
        candidates.push((a + b) * 0.5);
    }
    let mut best: Option<(f64, Rect)> = None;
    for theta in candidates {
        if let Some(rect) = rect_of(theta) {
            let s = objective.score(&rect);
            if best.as_ref().is_none_or(|(bs, _)| s > *bs) {
                best = Some((s, rect));
            }
        }
    }
    best.map(|(_, r)| r)
}

/// Picks the better of two optional rectangles under `objective`.
pub fn better_of<O: PerimeterObjective + ?Sized>(
    a: Option<Rect>,
    b: Option<Rect>,
    objective: &O,
) -> Option<Rect> {
    match (a, b) {
        (Some(x), Some(y)) => {
            if objective.score(&x) >= objective.score(&y) {
                Some(x)
            } else {
                Some(y)
            }
        }
        (Some(x), None) => Some(x),
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinary_is_perimeter() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 1.0));
        assert_eq!(OrdinaryPerimeter.score(&r), 6.0);
        assert!(OrdinaryPerimeter.is_ordinary());
    }

    #[test]
    fn weighted_reduces_to_ordinary_when_d_zero() {
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 1.0));
        let w = WeightedPerimeter::new(Point::new(0.5, 0.5), Point::new(0.0, 0.5), 0.0);
        assert_eq!(w.score(&r), r.perimeter());
    }

    #[test]
    fn weighted_equals_ordinary_at_center() {
        // When p is the rectangle center the approximation is exact: λw = λ.
        let r = Rect::new(Point::new(0.0, 0.0), Point::new(2.0, 1.0));
        let w = WeightedPerimeter::new(r.center(), r.center() - Point::new(1.0, 0.0), 0.7);
        assert!((w.score(&r) - r.perimeter()).abs() < 1e-9);
    }

    #[test]
    fn weighted_prefers_rect_ahead_of_movement() {
        // Object moving in +x; a rect extending ahead (+x of p) should score
        // higher than the mirror-image rect behind.
        let p = Point::new(0.0, 0.0);
        let p_lst = Point::new(-1.0, 0.0);
        let w = WeightedPerimeter::new(p, p_lst, 0.8);
        let ahead = Rect::new(Point::new(-0.1, -0.5), Point::new(2.0, 0.5));
        let behind = Rect::new(Point::new(-2.0, -0.5), Point::new(0.1, 0.5));
        assert_eq!(ahead.perimeter(), behind.perimeter());
        assert!(w.score(&ahead) > w.score(&behind));
    }

    #[test]
    fn weighted_bounds() {
        // (1-d)·λ ≤ λw ≤ (1+d)·λ for any geometry.
        let p = Point::new(0.3, 0.3);
        let p_lst = Point::new(0.0, 0.0);
        for d in [0.25, 0.5, 0.9] {
            let w = WeightedPerimeter::new(p, p_lst, d);
            for rect in [
                Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0)),
                Rect::new(Point::new(0.29, 0.29), Point::new(0.31, 0.31)),
                Rect::new(Point::new(-5.0, -5.0), Point::new(0.4, 0.4)),
            ] {
                let lam = rect.perimeter();
                let s = w.score(&rect);
                assert!(s >= (1.0 - d) * lam - 1e-9, "lower bound violated");
                assert!(s <= (1.0 + d) * lam + 1e-9, "upper bound violated");
            }
        }
    }

    #[test]
    fn optimize_theta_finds_closed_form_max() {
        // Maximize sinθ + cosθ on [0, π/2] — peak at π/4.
        let rect_of =
            |t: f64| Some(Rect::new(Point::new(0.0, 0.0), Point::new(t.sin() + t.cos(), 1e-9)));
        let best = optimize_theta(0.0, PI / 2.0, PI / 4.0, &OrdinaryPerimeter, rect_of).unwrap();
        assert!((best.width() - 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn optimize_theta_ternary_search_near_optimum() {
        // A non-ordinary objective with a known interior peak at θ = 1.0.
        struct Peak;
        impl PerimeterObjective for Peak {
            fn score(&self, rect: &Rect) -> f64 {
                let t = rect.width();
                -(t - 1.0) * (t - 1.0)
            }
        }
        let rect_of = |t: f64| Some(Rect::new(Point::new(0.0, 0.0), Point::new(t, 1.0)));
        let best = optimize_theta(0.0, 2.0, 0.0, &Peak, rect_of).unwrap();
        assert!((best.width() - 1.0).abs() < 1e-3);
    }

    #[test]
    fn optimize_theta_empty_interval() {
        let rect_of = |_t: f64| Some(Rect::UNIT);
        assert!(optimize_theta(1.0, 0.0, 0.5, &OrdinaryPerimeter, rect_of).is_none());
    }

    #[test]
    fn better_of_picks_higher_score() {
        let small = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let big = Rect::new(Point::new(0.0, 0.0), Point::new(3.0, 3.0));
        assert_eq!(better_of(Some(small), Some(big), &OrdinaryPerimeter), Some(big));
        assert_eq!(better_of(None, Some(small), &OrdinaryPerimeter), Some(small));
        assert_eq!(better_of::<OrdinaryPerimeter>(None, None, &OrdinaryPerimeter), None);
    }
}
