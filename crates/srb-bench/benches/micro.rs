//! Criterion micro-benchmarks for the core data structures and the
//! framework's hot paths: R*-tree operations, Ir-lp constructions, grid
//! lookups, and server-side update handling.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use srb_core::{FnProvider, ObjectId, QuerySpec, Server, ServerConfig};
use srb_geom::{
    irlp_circle, irlp_circle_complement, irlp_rect_complement_batch, irlp_ring, Circle,
    OrdinaryPerimeter, Point, Rect, Ring,
};
use srb_index::{bulk_load, LeafEntry, RStarTree, TreeConfig};
use std::hint::black_box;

fn rng_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| Point::new(rng.gen(), rng.gen())).collect()
}

fn bench_rtree(c: &mut Criterion) {
    let pts = rng_points(10_000, 1);
    let mut g = c.benchmark_group("rtree");

    g.bench_function("insert_10k", |b| {
        b.iter_batched(
            || pts.clone(),
            |pts| {
                let mut t = RStarTree::default();
                for (i, p) in pts.iter().enumerate() {
                    t.insert(i as u64, Rect::point(*p));
                }
                t
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("bulk_load_10k", |b| {
        let entries: Vec<LeafEntry> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| LeafEntry { id: i as u64, rect: Rect::point(*p) })
            .collect();
        b.iter(|| bulk_load(black_box(entries.clone()), TreeConfig::default()))
    });

    let mut tree = RStarTree::default();
    for (i, p) in pts.iter().enumerate() {
        tree.insert(i as u64, Rect::centered(*p, 0.002, 0.002));
    }
    g.bench_function("range_search", |b| {
        let q = Rect::centered(Point::new(0.5, 0.5), 0.05, 0.05);
        b.iter(|| tree.search_vec(black_box(&q)))
    });
    g.bench_function("knn_10", |b| {
        let q = Point::new(0.37, 0.61);
        b.iter(|| tree.nearest_iter(black_box(q)).take(10).count())
    });
    g.bench_function("bottom_up_update", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let id = i % 10_000;
            let p = pts[id as usize];
            tree.update(id, Rect::centered(p, 0.0021, 0.0019));
            i += 1;
        })
    });
    g.finish();
}

fn bench_irlp(c: &mut Criterion) {
    let mut g = c.benchmark_group("irlp");
    let cell = Rect::new(Point::new(0.4, 0.4), Point::new(0.42, 0.42));
    let p = Point::new(0.411, 0.413);

    g.bench_function("circle", |b| {
        let circle = Circle::new(Point::new(0.405, 0.405), 0.012);
        b.iter(|| irlp_circle(black_box(&circle), p, &cell, &OrdinaryPerimeter))
    });
    g.bench_function("circle_complement", |b| {
        let circle = Circle::new(Point::new(0.39, 0.39), 0.02);
        b.iter(|| irlp_circle_complement(black_box(&circle), p, &cell, &OrdinaryPerimeter))
    });
    g.bench_function("ring", |b| {
        let ring = Ring::new(Point::new(0.39, 0.39), 0.02, 0.04);
        b.iter(|| irlp_ring(black_box(&ring), p, &cell, &OrdinaryPerimeter))
    });
    g.bench_function("staircase_8_blocks", |b| {
        let mut rng = StdRng::seed_from_u64(7);
        let blocks: Vec<Rect> = (0..8)
            .map(|_| {
                let c = Point::new(0.4 + rng.gen::<f64>() * 0.02, 0.4 + rng.gen::<f64>() * 0.02);
                Rect::centered(c, 0.002, 0.002)
            })
            .filter(|r| !r.contains_point(p))
            .collect();
        b.iter(|| irlp_rect_complement_batch(black_box(&blocks), p, &cell, &OrdinaryPerimeter))
    });
    g.finish();
}

fn bench_server(c: &mut Criterion) {
    let mut g = c.benchmark_group("server");
    g.sample_size(20);
    let pts = rng_points(5_000, 3);

    g.bench_function("register_knn_query", |b| {
        let mut server = Server::with_defaults();
        {
            let ps = pts.clone();
            let mut provider = FnProvider(move |id: ObjectId| ps[id.index()]);
            for (i, p) in pts.iter().enumerate() {
                server.add_object(ObjectId(i as u32), *p, &mut provider, 0.0).expect("fresh id");
            }
        }
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            let ps = pts.clone();
            let mut provider = FnProvider(move |id: ObjectId| ps[id.index()]);
            let center = Point::new(rng.gen(), rng.gen());
            let resp = server.register_query(QuerySpec::knn(center, 5), &mut provider, 0.0);
            server.deregister_query(resp.id);
        })
    });

    g.bench_function("location_update", |b| {
        let mut server = Server::new(ServerConfig::default());
        let mut world = pts.clone();
        {
            let ps = world.clone();
            let mut provider = FnProvider(move |id: ObjectId| ps[id.index()]);
            for (i, p) in world.iter().enumerate() {
                server.add_object(ObjectId(i as u32), *p, &mut provider, 0.0).expect("fresh id");
            }
            for i in 0..50 {
                let center = Point::new((i as f64 * 0.619) % 1.0, (i as f64 * 0.383) % 1.0);
                server.register_query(QuerySpec::knn(center, 5), &mut provider, 0.0);
            }
        }
        let mut rng = StdRng::seed_from_u64(11);
        let mut now = 1.0;
        b.iter(|| {
            now += 0.001;
            let i = rng.gen_range(0..world.len());
            let p = world[i];
            world[i] = Point::new(
                (p.x + rng.gen::<f64>() * 0.01 - 0.005).clamp(0.0, 1.0),
                (p.y + rng.gen::<f64>() * 0.01 - 0.005).clamp(0.0, 1.0),
            );
            let ps = world.clone();
            let mut provider = FnProvider(move |id: ObjectId| ps[id.index()]);
            server
                .handle_location_update(ObjectId(i as u32), world[i], &mut provider, now)
                .expect("registered object")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_rtree, bench_irlp, bench_server);
criterion_main!(benches);
