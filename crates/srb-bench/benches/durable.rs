//! `durable` — logging-overhead benchmark for the durability plane.
//!
//! Drives the same rotating-movers update workload as `mem` through the
//! sequential batch engine three times per batch size:
//!
//! - **off**: durability disabled — the paper's in-memory semantics and
//!   the baseline every other number is relative to;
//! - **group**: `SyncPolicy::GroupCommit` — frames buffer in memory and
//!   fsync once every `group_ops` operations (the recommended setting);
//! - **fsync**: `SyncPolicy::Always` — one fsync per logical operation
//!   (a whole sequenced batch is one operation, so large batches
//!   amortize it).
//!
//! Each durable mode ends with a `sync_wal()` inside the timed window so
//! every run pays for its full tail. Rows land in `BENCH_durable.json`
//! at the repo root, including the on-disk footprint per update.

use srb_core::{
    DurabilityConfig, FnProvider, ObjectId, SequencedUpdate, ServerConfig, ShardedServer,
    SyncPolicy, UpdateResponse,
};
use srb_geom::Point;
use srb_sim::{generate_workload, SimConfig};
use std::time::Instant;

/// Updates pushed through the timed window of each mode.
const TARGET_UPDATES: u64 = 8_000;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pos_of(seed: u64, obj: u64, round: u64) -> Point {
    let h = splitmix64(seed ^ obj.wrapping_mul(0x9E37_79B9) ^ (round << 40));
    let x = (h >> 32) as f64 / u32::MAX as f64;
    let y = (h & 0xFFFF_FFFF) as f64 / u32::MAX as f64;
    Point::new(x.clamp(0.0, 1.0), y.clamp(0.0, 1.0))
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Off,
    Group,
    Fsync,
}

impl Mode {
    fn label(self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::Group => "group-commit",
            Mode::Fsync => "fsync-always",
        }
    }
}

struct ModeResult {
    updates: u64,
    seconds: f64,
    /// Bytes on disk (checkpoints + logs) when the run finished.
    disk_bytes: u64,
}

impl ModeResult {
    fn throughput(&self) -> f64 {
        self.updates as f64 / self.seconds.max(1e-12)
    }
}

fn dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|rd| rd.flatten().filter_map(|e| e.metadata().ok()).map(|m| m.len()).sum())
        .unwrap_or(0)
}

fn run_mode(mode: Mode, n_objects: usize, groups: u64, sim: &SimConfig, rep: u64) -> ModeResult {
    let batch_size = (n_objects as u64 / groups).max(1);
    let rounds = (TARGET_UPDATES / batch_size).max(1);
    let warmup = (rounds / 10).max(5);

    let dir = std::env::temp_dir().join(format!(
        "srb-bench-durable-{}-{}-{}",
        std::process::id(),
        mode.label(),
        rep
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let durability = match mode {
        Mode::Off => DurabilityConfig::default(),
        Mode::Group => DurabilityConfig {
            dir: Some(Box::leak(dir.to_string_lossy().into_owned().into_boxed_str())),
            policy: SyncPolicy::GroupCommit,
            group_ops: 8,
            checkpoint_ops: 512,
        },
        Mode::Fsync => DurabilityConfig {
            dir: Some(Box::leak(dir.to_string_lossy().into_owned().into_boxed_str())),
            policy: SyncPolicy::Always,
            group_ops: 1,
            checkpoint_ops: 512,
        },
    };
    let server_cfg = ServerConfig {
        space: sim.space,
        grid_m: sim.grid_m,
        max_speed: Some(sim.mean_speed * 4.0),
        durability,
        ..ServerConfig::default()
    };
    let mut server = ShardedServer::new(server_cfg, 1);

    let seed = sim.seed;
    let mut positions: Vec<Point> = (0..n_objects).map(|i| pos_of(seed, i as u64, 0)).collect();
    {
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        for (i, &p) in snapshot.iter().enumerate() {
            server
                .add_object(ObjectId(i as u32), p, &mut provider, 0.0)
                .expect("fresh object ids are unique");
        }
        let specs = generate_workload(&SimConfig { n_objects, ..*sim });
        for spec in specs {
            server.register_query(spec, &mut provider, 0.0);
        }
    }

    let mut out: Vec<(ObjectId, UpdateResponse)> = Vec::new();
    let mut updates = 0u64;
    let mut elapsed = 0.0f64;
    for round in 1..=warmup + rounds {
        let movers: Vec<ObjectId> = (0..n_objects)
            .filter(|i| (*i as u64) % groups == round % groups)
            .map(|i| ObjectId(i as u32))
            .collect();
        for &id in &movers {
            let h = splitmix64(seed ^ (id.0 as u64) << 20 ^ round);
            let dx = ((h >> 32) as f64 / u32::MAX as f64 - 0.5) * 0.01;
            let dy = ((h & 0xFFFF_FFFF) as f64 / u32::MAX as f64 - 0.5) * 0.01;
            let p = positions[id.index()];
            positions[id.index()] =
                Point::new((p.x + dx).clamp(0.0, 1.0), (p.y + dy).clamp(0.0, 1.0));
        }
        let batch: Vec<SequencedUpdate> = movers
            .iter()
            .map(|&id| SequencedUpdate { id, pos: positions[id.index()], seq: round })
            .collect();
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        let now = round as f64 * 0.1;
        out.clear();
        let timed = round > warmup;
        let t0 = Instant::now();
        server.handle_sequenced_updates_into(&batch, &mut provider, now, &mut out);
        if timed {
            elapsed += t0.elapsed().as_secs_f64();
            updates += batch.len() as u64;
        }
        assert_eq!(out.len(), batch.len(), "every mover gets a response");
    }
    // The tail of the group-commit buffer is part of the cost.
    let t0 = Instant::now();
    server.sync_wal();
    elapsed += t0.elapsed().as_secs_f64();
    server.check_invariants();
    let disk_bytes = if mode == Mode::Off { 0 } else { dir_bytes(&dir) };
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
    ModeResult { updates, seconds: elapsed, disk_bytes }
}

fn main() {
    let sim = srb_bench::base_config();
    srb_bench::figure_header("Durable", "logging overhead (off vs group commit vs fsync)", &sim);
    let n_objects: usize = if srb_bench::full_scale() { 20_000 } else { 2_000 };
    println!("    target={TARGET_UPDATES} updates per mode, sequential batch path");

    let mut rows: Vec<String> = Vec::new();
    for &groups in &[n_objects as u64, 10] {
        let batch_size = (n_objects as u64 / groups).max(1);
        // Interleaved best-of-3 per mode so background load hits all
        // modes equally (Criterion's lower-bound policy).
        let best = |mode: Mode| {
            (0..3)
                .map(|rep| run_mode(mode, n_objects, groups, &sim, rep))
                .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
                .expect("three runs")
        };
        let off = best(Mode::Off);
        let group = best(Mode::Group);
        let fsync = best(Mode::Fsync);
        for r in [&off, &group, &fsync] {
            let mode = if std::ptr::eq(r, &off) {
                Mode::Off
            } else if std::ptr::eq(r, &group) {
                Mode::Group
            } else {
                Mode::Fsync
            };
            let overhead = 1.0 - r.throughput() / off.throughput().max(1e-12);
            println!(
                "N={:>7} batch={:<5} {:<13} {:>10.0} upd/s  overhead={:>6.1}%  disk={:>7.1} B/upd",
                n_objects,
                batch_size,
                mode.label(),
                r.throughput(),
                overhead * 100.0,
                r.disk_bytes as f64 / r.updates.max(1) as f64,
            );
            let line = serde_json::json!({
                "figure": "durable",
                "series": mode.label(),
                "batch_size": batch_size,
                "n_objects": n_objects as u64,
                "updates": r.updates,
                "seconds": r.seconds,
                "updates_per_sec": r.throughput(),
                "overhead_vs_off": overhead,
                "disk_bytes_per_update": r.disk_bytes as f64 / r.updates.max(1) as f64,
            });
            println!("JSON {line}");
            rows.push(line.to_string());
        }
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_durable.json");
    let body = format!("[\n  {}\n]\n", rows.join(",\n  "));
    match srb_durable::atomic::atomic_write(std::path::Path::new(path), body.as_bytes()) {
        Ok(()) => println!("\nwrote {}", path),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
