//! Fault sweep — graceful degradation under a lossy channel (robustness
//! extension; no counterpart in the paper, which assumes reliable links).
//!
//! Sweeps the message loss rate over {0, 1%, 5%, 10%, 25%} and reports, for
//! SRB (hardened with leases + retransmission) and PRD(0.1):
//!
//! - monitoring accuracy — how gracefully each scheme degrades;
//! - communication cost charged on *sent* messages (retransmissions and
//!   lost uplinks are paid for even when they never arrive);
//! - the recovery traffic itself: retransmissions, lease probes, regrants.
//!
//! The zero-loss row still pays for the lease (the server probes every
//! client it has not heard from for a lease period even when nothing was
//! lost) — it measures the *insurance premium* of hardening, not the paper
//! configuration. With `lease: None` on the ideal channel the fault path
//! is completely inert and the paper figures are reproduced bit-for-bit.

use srb_bench::{base_config, figure_header, run_row};
use srb_mobility::RetryPolicy;
use srb_sim::{ChannelConfig, Scheme, SimConfig};

fn main() {
    let base = SimConfig {
        lease: Some(1.0),
        retry: RetryPolicy { timeout: 0.1, max_retries: 6 },
        ..base_config()
    };
    figure_header("Fault sweep", "accuracy and cost vs message loss rate", &base);
    println!(
        "    lease={:?} retry_timeout={} max_retries={}",
        base.lease, base.retry.timeout, base.retry.max_retries
    );
    let losses = [0.0, 0.01, 0.05, 0.10, 0.25];

    println!("\n-- accuracy and sent-cost vs loss; SRB hardened (lease + retry), PRD raw --");
    for &loss in &losses {
        let cfg = SimConfig { channel: ChannelConfig::lossy(loss), ..base };
        println!("\nloss = {loss}");
        for (label, scheme) in [("SRB", Scheme::Srb), ("PRD(0.1)", Scheme::Prd(0.1))] {
            let m = run_row(label, scheme, &cfg);
            println!(
                "{:<18} sent={:>8}  retrans={:>6}  drops={:>6}  stale_seq={:>5}  lease_probes={:>5}  regrants={:>5}",
                "", m.uplinks_sent, m.retransmissions, m.channel_drops, m.stale_seq_drops,
                m.lease_probes, m.regrants
            );
            let line = serde_json::json!({
                "figure": "fault_sweep",
                "series": label,
                "x": loss,
                "accuracy": m.accuracy,
                "comm_cost": m.comm_cost,
                "uplinks": m.uplinks,
                "uplinks_sent": m.uplinks_sent,
                "retransmissions": m.retransmissions,
                "channel_drops": m.channel_drops,
                "stale_seq_drops": m.stale_seq_drops,
                "lease_probes": m.lease_probes,
                "regrants": m.regrants,
                "probes": m.probes,
            });
            println!("JSON {line}");
        }
    }
}
