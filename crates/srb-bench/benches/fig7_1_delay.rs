//! Figure 7.1 — the impact of communication delay τ (paper §7.2).
//!
//! Panel (a): monitoring accuracy vs τ for SRB, PRD(0.1), PRD(1).
//! Panel (b): communication cost vs τ for SRB, OPT, PRD(0.1), PRD(1).
//!
//! Expected shape: SRB ≈ 100% at τ = 0 and degrades slowly; the PRD family
//! sits at 80–90% regardless; costs are flat in τ with
//! OPT < SRB < PRD(1) < PRD(0.1) = 10.

use srb_bench::{base_config, figure_header, json_row, run_row};
use srb_sim::{Scheme, SimConfig};

fn main() {
    let base = base_config();
    figure_header("Figure 7.1", "impact of communication delay τ", &base);
    let taus = [0.0, 0.1, 0.25, 0.5, 1.0];

    println!("\n-- panel (a): monitoring accuracy; panel (b): communication cost --");
    for &tau in &taus {
        let cfg = SimConfig { delay: tau, ..base };
        println!("\nτ = {tau}");
        let m = run_row("SRB", Scheme::Srb, &cfg);
        json_row("7.1", "SRB", tau, &m);
        let m = run_row("PRD(0.1)", Scheme::Prd(0.1), &cfg);
        json_row("7.1", "PRD(0.1)", tau, &m);
        let m = run_row("PRD(1)", Scheme::Prd(1.0), &cfg);
        json_row("7.1", "PRD(1)", tau, &m);
        // OPT's cost is delay-independent by construction; run it once.
        if tau == 0.0 {
            let m = run_row("OPT", Scheme::Opt, &cfg);
            json_row("7.1", "OPT", tau, &m);
        }
    }
}
