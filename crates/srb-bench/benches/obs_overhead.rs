//! `obs_overhead` — measures the runtime cost of the `srb-obs` telemetry
//! layer on the hottest path in the codebase: sharded batch updates.
//!
//! Design: two *identical* populated `ShardedServer`s are stepped in
//! lockstep through the same rounds of N/10-mover batches
//! (`handle_sequenced_updates_parallel`). Each round is timed once with
//! the runtime recorder disabled (`srb_obs::set_enabled(false)`) on one
//! server and once enabled on the other, with the order flipped every
//! round — a paired-sample design, so scheduler noise hits both sides of
//! each pair instead of biasing one. The headline figure is the relative
//! overhead of the enabled recorder; the acceptance target is **< 2%**.
//! With the `obs` cargo feature off the instrumentation compiles away
//! entirely and both sides are the uninstrumented baseline
//! (`compiled = false` in the output marks such a run).
//!
//! Results land in `BENCH_obs.json` at the repo root.

use srb_bench::{figure_header, full_scale};
use srb_core::{FnProvider, ObjectId, SequencedUpdate, ServerConfig, ShardedServer};
use srb_geom::Point;
use srb_sim::{generate_workload, SimConfig};
use std::time::Instant;

/// Timed rounds of batched updates (plus `WARMUP` untimed ones).
const ROUNDS: u64 = 120;
/// Untimed leading rounds: populate allocator arenas, the telemetry
/// registry, and the worker pool so first-touch cost lands on neither side.
const WARMUP: u64 = 10;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pos_of(seed: u64, obj: u64, round: u64) -> Point {
    let h = splitmix64(seed ^ obj.wrapping_mul(0x9E37_79B9) ^ (round << 40));
    let x = (h >> 32) as f64 / u32::MAX as f64;
    let y = (h & 0xFFFF_FFFF) as f64 / u32::MAX as f64;
    Point::new(x.clamp(0.0, 1.0), y.clamp(0.0, 1.0))
}

/// Builds a populated server: N objects at their round-0 positions plus the
/// standard query workload.
fn build_server(shards: usize, n_objects: usize, sim: &SimConfig) -> ShardedServer {
    let server_cfg = ServerConfig {
        space: sim.space,
        grid_m: sim.grid_m,
        max_speed: Some(sim.mean_speed * 4.0),
        ..ServerConfig::default()
    };
    let mut server = ShardedServer::new(server_cfg, shards);
    let seed = sim.seed;
    let positions: Vec<Point> = (0..n_objects).map(|i| pos_of(seed, i as u64, 0)).collect();
    let mut provider = FnProvider(|id: ObjectId| positions[id.index()]);
    for (i, &p) in positions.iter().enumerate() {
        server.add_object(ObjectId(i as u32), p, &mut provider, 0.0).expect("fresh ids");
    }
    for spec in generate_workload(&SimConfig { n_objects, ..*sim }) {
        server.register_query(spec, &mut provider, 0.0);
    }
    server
}

/// Applies one round's batch to `server` with the recorder set to `on`,
/// returning the wall-clock seconds of the batch call.
fn timed_round(
    server: &mut ShardedServer,
    batch: &[SequencedUpdate],
    positions: &[Point],
    now: f64,
    on: bool,
) -> f64 {
    srb_obs::set_enabled(on);
    let provider = |id: ObjectId| positions[id.index()];
    let t0 = Instant::now();
    let responses = server.handle_sequenced_updates_parallel(batch, &provider, now);
    let s = t0.elapsed().as_secs_f64();
    assert_eq!(responses.len(), batch.len(), "every mover gets a response");
    s
}

fn main() {
    let sim = srb_bench::base_config();
    figure_header("Obs overhead", "telemetry cost on the sharded batch path", &sim);
    let (shards, n_objects) = if full_scale() { (2, 20_000) } else { (2, 4_000) };
    println!(
        "    shards={shards}, N={n_objects}, rounds={ROUNDS} (+{WARMUP} warmup), compiled={}",
        srb_obs::compiled()
    );

    let seed = sim.seed;
    let mut baseline = build_server(shards, n_objects, &sim);
    let mut instrumented = build_server(shards, n_objects, &sim);
    let mut positions: Vec<Point> = (0..n_objects).map(|i| pos_of(seed, i as u64, 0)).collect();

    let mut disabled_s = 0.0f64;
    let mut enabled_s = 0.0f64;
    let mut updates = 0u64;
    for round in 1..=(WARMUP + ROUNDS) {
        // A rotating tenth of the fleet moves and reports; everyone else
        // stays inside their safe region.
        let movers: Vec<ObjectId> = (0..n_objects)
            .filter(|i| (*i as u64) % 10 == round % 10)
            .map(|i| ObjectId(i as u32))
            .collect();
        for &id in &movers {
            positions[id.index()] = pos_of(seed, id.0 as u64, round);
        }
        let batch: Vec<SequencedUpdate> = movers
            .iter()
            .map(|&id| SequencedUpdate { id, pos: positions[id.index()], seq: round })
            .collect();
        let now = round as f64 * 0.1;

        // Paired sample: both servers see the identical batch; the order of
        // the (off, on) pair flips every round.
        let (s_off, s_on) = if round % 2 == 0 {
            let s_off = timed_round(&mut baseline, &batch, &positions, now, false);
            let s_on = timed_round(&mut instrumented, &batch, &positions, now, true);
            (s_off, s_on)
        } else {
            let s_on = timed_round(&mut instrumented, &batch, &positions, now, true);
            let s_off = timed_round(&mut baseline, &batch, &positions, now, false);
            (s_off, s_on)
        };
        if round > WARMUP {
            disabled_s += s_off;
            enabled_s += s_on;
            updates += batch.len() as u64;
        }
    }
    srb_obs::set_enabled(true);
    baseline.check_invariants();
    instrumented.check_invariants();

    let overhead_pct = (enabled_s - disabled_s) / disabled_s.max(1e-12) * 100.0;
    println!(
        "\ntotal: disabled={:.4}s enabled={:.4}s overhead={:+.2}% ({} updates per side)",
        disabled_s, enabled_s, overhead_pct, updates
    );
    if srb_obs::compiled() && overhead_pct >= 2.0 {
        println!("WARNING: overhead above the 2% acceptance target");
    }

    let line = serde_json::json!({
        "figure": "obs_overhead",
        "shards": shards as u64,
        "n_objects": n_objects as u64,
        "rounds": ROUNDS,
        "updates": updates,
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "overhead_pct": overhead_pct,
        "compiled": srb_obs::compiled(),
    });
    println!("JSON {line}");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    let body = format!("[\n  {line}\n]\n");
    match srb_durable::atomic::atomic_write(std::path::Path::new(path), body.as_bytes()) {
        Ok(()) => println!("wrote {}", path),
        Err(e) => eprintln!("failed to write {path}: {e}"),
    }
}
