//! `adaptive` — the payoff curve of the adaptive backend plane: a
//! two-phase *skewed* workload that alternates between a regime the
//! uniform grid wins (dense population, search-heavy, tiny safe regions)
//! and one the R\*-tree wins (sparse population, update-heavy, kNN
//! browsing, large safe regions). A static backend is stuck with its
//! structure through both regimes; the adaptive engine — a [`DynBackend`]
//! steered by the real [`AdaptiveController`] — must track the phase
//! switches with live migrations and land at (or under) the better static
//! backend's total time.
//!
//! A fourth leg pins the *dispatch tax*: the identical steady workload on
//! a monomorphized [`RStarTree`] vs a `DynBackend` holding one, reported
//! as ns/op so the enum seam's cost stays visible in `BENCH_adaptive.json`.

use srb_bench::{figure_header, full_scale};
use srb_core::{AdaptiveController, ShardSignals};
use srb_geom::{Point, Rect};
use srb_index::{
    AdaptiveConfig, BackendConfig, DynBackend, GridConfig, NearestScratch, RStarTree,
    SpatialBackend, TreeConfig,
};
use std::time::Instant;

const K: usize = 10;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pos_of(seed: u64, obj: u64, round: u64) -> Point {
    let h = splitmix64(seed ^ obj.wrapping_mul(0x9E37_79B9) ^ (round << 40));
    let x = (h >> 32) as f64 / u32::MAX as f64;
    let y = (h & 0xFFFF_FFFF) as f64 / u32::MAX as f64;
    Point::new(x.clamp(0.0, 1.0), y.clamp(0.0, 1.0))
}

fn region_of(seed: u64, obj: u64, round: u64, sr_half: f64) -> Rect {
    let base = pos_of(seed, obj, 0);
    let h = splitmix64(seed ^ (obj << 17) ^ round.wrapping_mul(0xA5A5));
    let dx = ((h >> 32) as f64 / u32::MAX as f64 - 0.5) * 4.0 * sr_half;
    let dy = ((h & 0xFFFF_FFFF) as f64 / u32::MAX as f64 - 0.5) * 4.0 * sr_half;
    let c = Point::new((base.x + dx).clamp(0.0, 1.0), (base.y + dy).clamp(0.0, 1.0));
    Rect::centered(c, sr_half, sr_half)
}

/// One regime of the alternating workload. Population *growth* is ramped
/// across the regime's rounds (objects arrive over time); population
/// *shrink* happens at phase entry (departures drain at once). The
/// asymmetry is deliberate: a teleporting population would hand the whole
/// arrival burst to whatever structure the engine held at the boundary,
/// before the controller has seen a single batch of the new regime.
struct Phase {
    /// Population at the end of the regime.
    n: usize,
    /// Safe-region half-size for this regime.
    sr_half: f64,
    /// Rounds (= controller batch boundaries) the regime lasts.
    rounds: u64,
    /// Full update sweeps per round (update-heaviness knob).
    upd_sweeps: u64,
    /// Quarantine-sized range probes per round.
    searches: u64,
    /// Best-first kNN browses per round.
    knns: u64,
}

/// Dense & search-bound: the grid's regime. Population ramps up to `n`
/// over the rounds.
fn dense_phase(scale: usize) -> Phase {
    Phase {
        n: 12_000 * scale,
        sr_half: 0.0008,
        rounds: 10,
        upd_sweeps: 1,
        searches: 3_000,
        knns: 100,
    }
}

/// Sparse & update/kNN-bound: the tree's regime (the grid pays ~4x on
/// these relocations and ~2.5x on the browses — see `BENCH_backend.json`
/// at n=1000, sr=0.01).
fn sparse_phase(scale: usize) -> Phase {
    Phase { n: 800 * scale, sr_half: 0.012, rounds: 24, upd_sweeps: 6, searches: 200, knns: 400 }
}

struct Outcome {
    total_secs: f64,
    dense_secs: f64,
    sparse_secs: f64,
    checksum: f64,
}

/// Drives the alternating phases through one backend. `after_round` fires
/// at every round boundary with the cumulative update count — the adaptive
/// leg hangs the controller there; static legs pass a no-op. All work,
/// including phase-entry resizes and any live migrations performed by the
/// hook, lands inside the measured time: the adaptive engine pays for its
/// rebuilds on the same clock it wins rounds with.
fn run_scenario<B: SpatialBackend>(
    config: &BackendConfig,
    cycles: u64,
    scale: usize,
    seed: u64,
    mut after_round: impl FnMut(&mut B, u64),
) -> Outcome {
    let mut b = B::build(config, Rect::UNIT);
    let mut cur_n = 0usize;
    let mut updates = 0u64;
    let mut round_no = 1u64;
    let mut hits = 0u64;
    let mut knn_sum = 0.0f64;
    let mut scratch = NearestScratch::new();
    let (mut dense_secs, mut sparse_secs) = (0.0f64, 0.0f64);

    for cycle in 0..cycles {
        for (pi, phase) in [dense_phase(scale), sparse_phase(scale)].iter().enumerate() {
            let t0 = Instant::now();
            // Phase entry: departures drain at once; every survivor's safe
            // region is re-issued at this regime's size.
            for i in phase.n..cur_n {
                b.remove(i as u64);
            }
            cur_n = cur_n.min(phase.n);
            let enter_n = cur_n;
            for i in 0..enter_n {
                b.update(i as u64, region_of(seed, i as u64, round_no, phase.sr_half));
                updates += 1;
            }

            for round in 1..=phase.rounds {
                round_no += 1;
                // Arrivals: this round's slice of the ramp up to `phase.n`.
                let target = enter_n + (phase.n - enter_n) * round as usize / phase.rounds as usize;
                while cur_n < target {
                    b.insert(cur_n as u64, region_of(seed, cur_n as u64, round_no, phase.sr_half));
                    cur_n += 1;
                }
                for _ in 0..phase.upd_sweeps {
                    for i in 0..cur_n {
                        b.update(i as u64, region_of(seed, i as u64, round_no, phase.sr_half));
                        updates += 1;
                    }
                }
                for s in 0..phase.searches {
                    let c = pos_of(seed ^ 0xBEEF ^ (cycle << 20), s ^ (round_no << 32), 1);
                    let q = Rect::centered(c, 0.01, 0.01);
                    b.search(&q, &mut |_| hits += 1);
                }
                for s in 0..phase.knns {
                    let c = pos_of(seed ^ 0xF00D ^ (cycle << 20), s ^ (round_no << 32), 2);
                    for nb in b.nearest_iter_with(c, &mut scratch).take(K) {
                        knn_sum += nb.dist;
                    }
                }
                after_round(&mut b, updates);
            }
            let secs = t0.elapsed().as_secs_f64();
            if pi == 0 {
                dense_secs += secs;
            } else {
                sparse_secs += secs;
            }
        }
    }
    assert!(knn_sum.is_finite());
    b.check_invariants();
    Outcome {
        total_secs: dense_secs + sparse_secs,
        dense_secs,
        sparse_secs,
        checksum: hits as f64 + knn_sum,
    }
}

/// The controller the adaptive leg runs: paper-default thresholds except a
/// tight decision cadence (so phase tracking costs at most a couple of
/// rounds of lag per switch), a density threshold sitting low on the
/// dense regime's arrival ramp, and a hot-window bar the dense regime's
/// search burst clears in its very first round — so the structure flips
/// while the population, and therefore the rebuild, is still small.
fn controller_config() -> AdaptiveConfig {
    AdaptiveConfig {
        decision_every: 1,
        confirm: 1,
        dense_above: 3_000,
        hot_visits_per_op: 12.0,
        ..Default::default()
    }
}

/// Dispatch-tax microbench: the same update/search loop, monomorphized vs
/// enum-dispatched over the identical R\*-tree. Returns (ns/update,
/// ns/search) for one backend.
fn dispatch_leg<B: SpatialBackend>(config: &BackendConfig, seed: u64) -> (f64, f64) {
    let n: usize = 4_000;
    let sr = 0.001;
    let mut b = B::build(config, Rect::UNIT);
    for i in 0..n {
        b.insert(i as u64, region_of(seed, i as u64, 0, sr));
    }
    let rounds: u64 = if full_scale() { 24 } else { 8 };
    let t0 = Instant::now();
    for round in 1..=rounds {
        for i in 0..n {
            b.update(i as u64, region_of(seed, i as u64, round, sr));
        }
    }
    let upd_ns = t0.elapsed().as_secs_f64() * 1e9 / (rounds * n as u64) as f64;

    let searches: u64 = if full_scale() { 24_000 } else { 8_000 };
    let mut hits = 0u64;
    let t0 = Instant::now();
    for s in 0..searches {
        let c = pos_of(seed ^ 0xBEEF, s, 1);
        b.search(&Rect::centered(c, 0.01, 0.01), &mut |_| hits += 1);
    }
    let search_ns = t0.elapsed().as_secs_f64() * 1e9 / searches as f64;
    assert!(hits > 0);
    (upd_ns, search_ns)
}

fn main() {
    let sim = srb_bench::base_config();
    figure_header(
        "Adaptive",
        "adaptive backend plane: static rstar vs static grid vs controller-steered DynBackend",
        &sim,
    );
    let seed = sim.seed;
    let scale = if full_scale() { 2 } else { 1 };
    let cycles: u64 = 2;

    let rstar_cfg = BackendConfig::RStar(TreeConfig::default());
    let grid_cfg = BackendConfig::Grid(GridConfig::default());

    // Best-of-2 per leg, interleaved so background load hits all equally.
    let best = |f: &dyn Fn() -> (Outcome, u64, u64)| {
        let a = f();
        let b = f();
        if a.0.total_secs <= b.0.total_secs {
            a
        } else {
            b
        }
    };
    let static_leg = |cfg: &BackendConfig, is_grid: bool| {
        let cfg = *cfg;
        move || {
            let out = if is_grid {
                run_scenario::<srb_index::UniformGrid>(&cfg, cycles, scale, seed, |_, _| {})
            } else {
                run_scenario::<RStarTree>(&cfg, cycles, scale, seed, |_, _| {})
            };
            (out, 0u64, 0u64)
        }
    };
    let adaptive_leg = || {
        let acfg = controller_config();
        let mut ctl = AdaptiveController::new(acfg, 1);
        let out = run_scenario::<DynBackend>(
            &BackendConfig::Adaptive(acfg),
            cycles,
            scale,
            seed,
            |b, updates| {
                if ctl.note_batch() {
                    let sig = ShardSignals {
                        len: b.len(),
                        visits: b.visits(),
                        updates,
                        kind: b.kind(),
                        grid_m: b.grid_resolution(),
                    };
                    if let Some(action) = ctl.decide(0, sig) {
                        b.migrate(&ctl.config_for(action));
                    }
                }
            },
        );
        (out, ctl.migrations(), ctl.retunes())
    };

    let legs: Vec<(&str, (Outcome, u64, u64))> = vec![
        ("rstar", best(&static_leg(&rstar_cfg, false))),
        ("grid", best(&static_leg(&grid_cfg, true))),
        ("adaptive", best(&adaptive_leg)),
    ];

    // Every leg answers the identical query stream; the checksums agree or
    // the comparison is meaningless.
    let checksum = legs[0].1 .0.checksum;
    for (label, (out, _, _)) in &legs {
        assert!(
            (out.checksum - checksum).abs() < 1e-6,
            "{label} answered a different query stream"
        );
    }
    // The adaptive leg must actually have tracked the phase switches:
    // 2 cycles x 2 switches, minus the initial regime it was born into.
    let migrations = legs[2].1 .1;
    assert!(migrations >= 2, "controller tracked no phase switches (migrations={migrations})");

    let mut rows: Vec<String> = Vec::new();
    for (label, (out, migrations, retunes)) in &legs {
        println!(
            "{label:<9} total={:>8.1}ms dense={:>8.1}ms sparse={:>8.1}ms migrations={migrations} retunes={retunes}",
            out.total_secs * 1e3,
            out.dense_secs * 1e3,
            out.sparse_secs * 1e3,
        );
        rows.push(
            serde_json::json!({
                "figure": "adaptive",
                "series": *label,
                "total_secs": out.total_secs,
                "dense_secs": out.dense_secs,
                "sparse_secs": out.sparse_secs,
                "migrations": *migrations,
                "retunes": *retunes,
                "cycles": cycles,
                "scale": scale as u64,
            })
            .to_string(),
        );
    }

    // Dispatch tax: interleaved best-of-2, monomorphized vs enum seam.
    let mono = {
        let a = dispatch_leg::<RStarTree>(&rstar_cfg, seed);
        let b = dispatch_leg::<RStarTree>(&rstar_cfg, seed);
        (a.0.min(b.0), a.1.min(b.1))
    };
    let dynd = {
        let a = dispatch_leg::<DynBackend>(&rstar_cfg, seed);
        let b = dispatch_leg::<DynBackend>(&rstar_cfg, seed);
        (a.0.min(b.0), a.1.min(b.1))
    };
    println!(
        "dispatch  mono update={:.1}ns search={:.1}ns | dyn update={:.1}ns search={:.1}ns | tax update={:+.1}% search={:+.1}%",
        mono.0, mono.1, dynd.0, dynd.1,
        (dynd.0 / mono.0 - 1.0) * 100.0,
        (dynd.1 / mono.1 - 1.0) * 100.0,
    );
    rows.push(
        serde_json::json!({
            "figure": "adaptive",
            "series": "dispatch-overhead",
            "mono_update_ns": mono.0,
            "mono_search_ns": mono.1,
            "dyn_update_ns": dynd.0,
            "dyn_search_ns": dynd.1,
            "update_tax_pct": (dynd.0 / mono.0 - 1.0) * 100.0,
            "search_tax_pct": (dynd.1 / mono.1 - 1.0) * 100.0,
        })
        .to_string(),
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_adaptive.json");
    let body = format!("[\n  {}\n]\n", rows.join(",\n  "));
    match srb_durable::atomic::atomic_write(std::path::Path::new(path), body.as_bytes()) {
        Ok(()) => println!("\nwrote {}", path),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
