//! Figure 7.3 — scalability with the number of moving objects N
//! (paper §7.3).
//!
//! Panel (a): server CPU time per time unit; panel (b): communication cost
//! per client. Expected shape: SRB CPU grows sublinearly (incremental
//! R*-tree maintenance); PRD grows linearly or worse (full rebuild per
//! round). SRB's per-client communication cost grows sublinearly with
//! density and stays close to OPT.

use srb_bench::{base_config, figure_header, full_scale, json_row, run_row};
use srb_sim::{Scheme, SimConfig};

fn main() {
    let base = base_config();
    figure_header("Figure 7.3", "performance vs number of objects N", &base);
    let ns: &[usize] =
        if full_scale() { &[100, 1_000, 10_000, 100_000] } else { &[100, 500, 2_000, 8_000] };

    for &n in ns {
        let cfg = SimConfig { n_objects: n, ..base };
        println!("\nN = {n}");
        let m = run_row("SRB", Scheme::Srb, &cfg);
        json_row("7.3", "SRB", n as f64, &m);
        let m = run_row("PRD(1)", Scheme::Prd(1.0), &cfg);
        json_row("7.3", "PRD(1)", n as f64, &m);
        let m = run_row("PRD(0.1)", Scheme::Prd(0.1), &cfg);
        json_row("7.3", "PRD(0.1)", n as f64, &m);
        let m = run_row("OPT", Scheme::Opt, &cfg);
        json_row("7.3", "OPT", n as f64, &m);
    }
}
