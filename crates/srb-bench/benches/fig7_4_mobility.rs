//! Figure 7.4 — sensitivity of SRB to object mobility (paper §7.4).
//!
//! Panel (a): communication cost vs mean speed v̄, with the cost *per
//! distance unit* on the secondary axis. Expected shape: cost grows
//! linearly with v̄ while cost-per-distance stays flat (updates depend on
//! trajectory length, not speed).
//!
//! Panel (b): communication cost vs mean constant movement period t̄v.
//! Expected shape: essentially flat — SRB is robust to movement steadiness.

use srb_bench::{base_config, figure_header, json_row, run_row};
use srb_sim::{Scheme, SimConfig};

fn main() {
    let base = base_config();
    figure_header("Figure 7.4(a)", "communication cost vs mean speed v̄", &base);
    for &v in &[0.0025, 0.005, 0.01, 0.02, 0.04] {
        let cfg = SimConfig { mean_speed: v, ..base };
        println!("\nv̄ = {v}");
        let m = run_row("SRB", Scheme::Srb, &cfg);
        json_row("7.4a", "SRB", v, &m);
        let m = run_row("OPT", Scheme::Opt, &cfg);
        json_row("7.4a", "OPT", v, &m);
    }

    figure_header("Figure 7.4(b)", "communication cost vs movement period t̄v", &base);
    for &tv in &[0.001, 0.005, 0.02, 0.1, 0.5, 1.0] {
        let cfg = SimConfig { mean_period: tv, ..base };
        println!("\nt̄v = {tv}");
        let m = run_row("SRB", Scheme::Srb, &cfg);
        json_row("7.4b", "SRB", tv, &m);
    }
}
