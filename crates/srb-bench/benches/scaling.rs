//! `scaling` — threads × shard count × object count throughput sweep for
//! the sharded batch engine.
//!
//! Unlike the figure benches this drives `ShardedServer` directly (no
//! event queue, no channel model): each round re-positions a tenth of the
//! objects and pushes the batch through
//! [`ShardedServer::handle_sequenced_updates_parallel`], i.e. through the
//! pipelined front-end — per-shard ingest rings, persistent shard
//! workers, streaming coordinator merge. Two series land per cell grid:
//!
//! - `mode: "batch"` — per-batch throughput over the full
//!   threads × shards matrix (each leg pins the worker count with
//!   `with_threads`, so the matrix is reproducible regardless of
//!   `SRB_THREADS`);
//! - `mode: "sustained"` — a long pre-built stream of back-to-back
//!   batches timed as one window at the widest thread count, measuring
//!   steady-state ingest with the rings primed and the workers hot.
//!
//! Both modes probe through a [`TableProvider`] snapshot, so workers
//! answer probes locally (DESIGN.md §15) and the numbers measure the
//! engine rather than coordinator probe round-trips.
//!
//! Rows also land in `BENCH_scaling.json` at the repo root for tooling —
//! CI's scaling-regression gate (`tools/check_scaling.py`) fails if
//! shards=4 falls below shards=2 at any gated point. With one worker the
//! parallel path degenerates to the sequential loop, so speedups only
//! show on multi-core runners.

use srb_bench::{figure_header, full_scale};
use srb_core::{
    configured_threads, FnProvider, ObjectId, SequencedUpdate, ServerConfig, ShardedServer,
    TableProvider,
};
use srb_geom::Point;
use srb_sim::{generate_workload, SimConfig};
use std::time::Instant;

/// Rounds of batched updates timed per cell.
const ROUNDS: u64 = 20;

/// Rounds in the sustained-ingest stream: long enough that worker
/// spawn/park transients vanish into the steady state.
const SUSTAINED_ROUNDS: u64 = 120;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic position in the unit square from a (seed, object, round)
/// triple — cheap stand-in for a mobility model at bench scale.
fn pos_of(seed: u64, obj: u64, round: u64) -> Point {
    let h = splitmix64(seed ^ obj.wrapping_mul(0x9E37_79B9) ^ (round << 40));
    let x = (h >> 32) as f64 / u32::MAX as f64;
    let y = (h & 0xFFFF_FFFF) as f64 / u32::MAX as f64;
    Point::new(x.clamp(0.0, 1.0), y.clamp(0.0, 1.0))
}

struct Cell {
    threads: usize,
    updates: u64,
    seconds: f64,
}

impl Cell {
    fn throughput(&self) -> f64 {
        self.updates as f64 / self.seconds.max(1e-12)
    }
}

/// Builds a populated `shards`-way server pinned to `threads` workers.
fn build_server(
    shards: usize,
    threads: usize,
    n_objects: usize,
    sim: &SimConfig,
) -> (ShardedServer, Vec<Point>) {
    let server_cfg = ServerConfig {
        space: sim.space,
        grid_m: sim.grid_m,
        max_speed: Some(sim.mean_speed * 4.0),
        ..ServerConfig::default()
    };
    let mut server = ShardedServer::new(server_cfg, shards).with_threads(threads);

    let seed = sim.seed;
    let positions: Vec<Point> = (0..n_objects).map(|i| pos_of(seed, i as u64, 0)).collect();
    {
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        for (i, &p) in snapshot.iter().enumerate() {
            server
                .add_object(ObjectId(i as u32), p, &mut provider, 0.0)
                .expect("fresh object ids are unique");
        }
        let specs = generate_workload(&SimConfig { n_objects, ..*sim });
        for spec in specs {
            server.register_query(spec, &mut provider, 0.0);
        }
    }
    (server, positions)
}

/// The batch of round `round`: a rotating tenth of the fleet moves and
/// reports; everyone else stays inside their safe region. Also applies
/// the moves to `positions`.
fn round_batch(
    seed: u64,
    n_objects: usize,
    round: u64,
    positions: &mut [Point],
) -> Vec<SequencedUpdate> {
    (0..n_objects)
        .filter(|i| (*i as u64) % 10 == round % 10)
        .map(|i| {
            let id = ObjectId(i as u32);
            positions[i] = pos_of(seed, i as u64, round);
            SequencedUpdate { id, pos: positions[i], seq: round }
        })
        .collect()
}

/// Times `ROUNDS` update batches of N/10 re-positioned objects through
/// the pipelined batch path, per-batch.
fn run_cell(shards: usize, threads: usize, n_objects: usize, sim: &SimConfig) -> Cell {
    let (mut server, mut positions) = build_server(shards, threads, n_objects, sim);
    let seed = sim.seed;
    let mut updates = 0u64;
    let mut seconds = 0.0f64;
    for round in 1..=ROUNDS {
        let batch = round_batch(seed, n_objects, round, &mut positions);
        let provider = TableProvider(&positions);
        let now = round as f64 * 0.1;
        let t0 = Instant::now();
        let responses = server.handle_sequenced_updates_parallel(&batch, &provider, now);
        seconds += t0.elapsed().as_secs_f64();
        assert_eq!(responses.len(), batch.len(), "every mover gets a response");
        updates += batch.len() as u64;
    }
    server.check_invariants();
    Cell { threads, updates, seconds }
}

/// Sustained ingest: every batch of the stream is built up front, then
/// the whole submission loop is timed as one window — the rings stay
/// primed, the workers never go cold, and the number measures the
/// front-end's steady-state throughput rather than per-batch latency.
fn run_sustained(shards: usize, threads: usize, n_objects: usize, sim: &SimConfig) -> Cell {
    let (mut server, mut positions) = build_server(shards, threads, n_objects, sim);
    let seed = sim.seed;
    let mut prebuilt_positions = positions.clone();
    let batches: Vec<Vec<SequencedUpdate>> = (1..=SUSTAINED_ROUNDS)
        .map(|round| round_batch(seed, n_objects, round, &mut prebuilt_positions))
        .collect();

    let mut updates = 0u64;
    let mut out = Vec::new();
    let t0 = Instant::now();
    for (i, batch) in batches.iter().enumerate() {
        for u in batch {
            positions[u.id.index()] = u.pos;
        }
        let provider = TableProvider(&positions);
        out.clear();
        server.handle_sequenced_updates_parallel_into(
            batch,
            &provider,
            (i + 1) as f64 * 0.1,
            &mut out,
        );
        updates += batch.len() as u64;
    }
    let seconds = t0.elapsed().as_secs_f64();
    server.check_invariants();
    Cell { threads, updates, seconds }
}

fn main() {
    let sim = srb_bench::base_config();
    figure_header("Scaling", "sharded batch-update throughput", &sim);
    let (shard_counts, thread_counts, object_counts): (&[usize], &[usize], &[usize]) =
        if full_scale() {
            (&[1, 2, 4, 8], &[1, 2, 4, 8], &[20_000, 100_000])
        } else {
            (&[1, 2, 4], &[1, 2, 4], &[2_000, 8_000])
        };
    println!(
        "    host threads={} (matrix pins its own), rounds={ROUNDS}, batch=N/10",
        configured_threads()
    );

    let mut rows: Vec<String> = Vec::new();
    for &n in object_counts {
        for &t in thread_counts {
            let mut base_tput = 0.0f64;
            for &s in shard_counts {
                let cell = run_cell(s, t, n, &sim);
                if s == 1 {
                    base_tput = cell.throughput();
                }
                let speedup = cell.throughput() / base_tput.max(1e-12);
                println!(
                    "N={:>7} threads={:<2} shards={:<2} throughput={:>12.0} upd/s  speedup_vs_1={:>6.2}x  ({} updates in {:.3}s)",
                    n, t, s, cell.throughput(), speedup, cell.updates, cell.seconds
                );
                let line = serde_json::json!({
                    "figure": "scaling",
                    "mode": "batch",
                    "series": format!("shards={s}"),
                    "shards": s as u64,
                    "n_objects": n as u64,
                    "threads": cell.threads as u64,
                    "updates": cell.updates,
                    "seconds": cell.seconds,
                    "updates_per_sec": cell.throughput(),
                    "speedup_vs_1_shard": speedup,
                });
                println!("JSON {line}");
                rows.push(line.to_string());
            }
        }
    }

    // Sustained-ingest series at the widest thread count: one timing
    // window over a long pre-built stream.
    let t = *thread_counts.last().expect("non-empty thread grid");
    for &n in object_counts {
        let mut base_tput = 0.0f64;
        for &s in shard_counts {
            let cell = run_sustained(s, t, n, &sim);
            if s == 1 {
                base_tput = cell.throughput();
            }
            let speedup = cell.throughput() / base_tput.max(1e-12);
            println!(
                "N={:>7} threads={:<2} shards={:<2} sustained ={:>12.0} upd/s  speedup_vs_1={:>6.2}x  ({} updates in {:.3}s)",
                n, t, s, cell.throughput(), speedup, cell.updates, cell.seconds
            );
            let line = serde_json::json!({
                "figure": "scaling",
                "mode": "sustained",
                "series": format!("sustained shards={s}"),
                "shards": s as u64,
                "n_objects": n as u64,
                "threads": cell.threads as u64,
                "updates": cell.updates,
                "seconds": cell.seconds,
                "updates_per_sec": cell.throughput(),
                "speedup_vs_1_shard": speedup,
            });
            println!("JSON {line}");
            rows.push(line.to_string());
        }
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");
    let body = format!("[\n  {}\n]\n", rows.join(",\n  "));
    match srb_durable::atomic::atomic_write(std::path::Path::new(path), body.as_bytes()) {
        Ok(()) => println!("\nwrote {}", path),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
