//! Figure 7.5 — sensitivity to the grid partitioning M (paper §7.4).
//!
//! Expected shape: communication cost increases with M (the cell bounds
//! the largest possible safe region, and past M ≈ 50 the cell dominates);
//! CPU time decreases with M (fewer relevant queries per cell).

use srb_bench::{base_config, figure_header, json_row, run_row};
use srb_sim::{Scheme, SimConfig};

fn main() {
    let base = base_config();
    figure_header("Figure 7.5", "performance vs grid partitioning M", &base);
    for &m_grid in &[5usize, 10, 25, 50, 100] {
        let cfg = SimConfig { grid_m: m_grid, ..base };
        println!("\nM = {m_grid}");
        let m = run_row("SRB", Scheme::Srb, &cfg);
        json_row("7.5", "SRB", m_grid as f64, &m);
    }
}
