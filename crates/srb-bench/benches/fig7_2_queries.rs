//! Figure 7.2 — scalability with the number of registered queries W
//! (paper §7.3).
//!
//! Panel (a): server CPU time per time unit; panel (b): communication cost.
//! Expected shape: SRB CPU and communication grow *sublinearly* in W (the
//! grid query index filters irrelevant queries); PRD CPU grows linearly
//! (it reevaluates every query each round). The grid query index footprint
//! is also reported (the paper notes it stays under 300 KB at W = 1000).

use srb_bench::{base_config, figure_header, full_scale, json_row, run_row};
use srb_sim::{Scheme, SimConfig};

fn main() {
    let base = base_config();
    figure_header("Figure 7.2", "performance vs number of queries W", &base);
    let ws: &[usize] =
        if full_scale() { &[10, 50, 100, 500, 1000] } else { &[5, 15, 60, 120, 240] };

    for &w in ws {
        let cfg = SimConfig { n_queries: w, ..base };
        println!("\nW = {w}");
        let m = run_row("SRB", Scheme::Srb, &cfg);
        println!("{:<18} grid index footprint: {} bucket entries", "", m.grid_footprint);
        json_row("7.2", "SRB", w as f64, &m);
        let m = run_row("PRD(1)", Scheme::Prd(1.0), &cfg);
        json_row("7.2", "PRD(1)", w as f64, &m);
        let m = run_row("PRD(0.1)", Scheme::Prd(0.1), &cfg);
        json_row("7.2", "PRD(0.1)", w as f64, &m);
        let m = run_row("OPT", Scheme::Opt, &cfg);
        json_row("7.2", "OPT", w as f64, &m);
    }
}
