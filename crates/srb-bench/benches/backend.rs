//! `backend` — the §7.1-style object-index tradeoff curve: update vs search
//! throughput of the two [`SpatialBackend`]s (R\*-tree with bottom-up
//! updates vs the cell-bucketed uniform grid), swept across object counts
//! and safe-region sizes.
//!
//! The workload mirrors what the SRB server asks of its object index:
//! rectangles are safe regions (half-size `sr_half`), updates are small
//! relocations (the per-report `pin_to_point`/`install_region` pattern),
//! range searches are quarantine-sized probes, and kNN browses pull the
//! first `k` neighbors through the reusable-scratch best-first stream.
//! Rows land in `BENCH_backend.json` at the repo root.

use srb_bench::{figure_header, full_scale};
use srb_geom::{Point, Rect};
use srb_index::{
    BackendConfig, GridConfig, NearestScratch, RStarTree, SpatialBackend, TreeConfig, UniformGrid,
};
use std::time::Instant;

const K: usize = 10;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pos_of(seed: u64, obj: u64, round: u64) -> Point {
    let h = splitmix64(seed ^ obj.wrapping_mul(0x9E37_79B9) ^ (round << 40));
    let x = (h >> 32) as f64 / u32::MAX as f64;
    let y = (h & 0xFFFF_FFFF) as f64 / u32::MAX as f64;
    Point::new(x.clamp(0.0, 1.0), y.clamp(0.0, 1.0))
}

/// Safe region of object `obj` in `round`: a small drift from its previous
/// center (the report-and-regrant pattern), clamped to the unit square.
fn region_of(seed: u64, obj: u64, round: u64, sr_half: f64) -> Rect {
    let base = pos_of(seed, obj, 0);
    let h = splitmix64(seed ^ (obj << 17) ^ round.wrapping_mul(0xA5A5));
    let dx = ((h >> 32) as f64 / u32::MAX as f64 - 0.5) * 4.0 * sr_half;
    let dy = ((h & 0xFFFF_FFFF) as f64 / u32::MAX as f64 - 0.5) * 4.0 * sr_half;
    let c = Point::new((base.x + dx).clamp(0.0, 1.0), (base.y + dy).clamp(0.0, 1.0));
    Rect::centered(c, sr_half, sr_half)
}

struct Timings {
    update_ops: u64,
    update_secs: f64,
    search_ops: u64,
    search_secs: f64,
    search_hits: u64,
    knn_ops: u64,
    knn_secs: f64,
    visits_per_search: f64,
}

/// Builds a backend with `n` safe regions and times the three op classes.
/// Deterministic in `seed`; the checksum accumulators keep the optimizer
/// from deleting the measured work.
fn run_backend<B: SpatialBackend>(
    config: &BackendConfig,
    n: usize,
    sr_half: f64,
    seed: u64,
) -> Timings {
    let mut b = B::build(config, Rect::UNIT);
    for i in 0..n {
        b.insert(i as u64, region_of(seed, i as u64, 0, sr_half));
    }

    // Updates: every object relocates once per round (small drift), the
    // per-report pattern the SRB hot path produces.
    let update_rounds: u64 = if full_scale() { 16 } else { 8 };
    let t0 = Instant::now();
    for round in 1..=update_rounds {
        for i in 0..n {
            b.update(i as u64, region_of(seed, i as u64, round, sr_half));
        }
    }
    let update_secs = t0.elapsed().as_secs_f64();
    let update_ops = update_rounds * n as u64;

    // Range searches: quarantine-sized windows at random anchors.
    let search_ops: u64 = if full_scale() { 8_000 } else { 4_000 };
    let q_half = 0.01;
    b.reset_visits();
    let mut hits = 0u64;
    let t0 = Instant::now();
    for s in 0..search_ops {
        let c = pos_of(seed ^ 0xBEEF, s, 1);
        let q = Rect::centered(c, q_half, q_half);
        b.search(&q, &mut |_| hits += 1);
    }
    let search_secs = t0.elapsed().as_secs_f64();
    let visits_per_search = b.visits() as f64 / search_ops as f64;

    // kNN browses: first K neighbors through the reusable scratch frontier.
    let knn_ops: u64 = if full_scale() { 4_000 } else { 2_000 };
    let mut scratch = NearestScratch::new();
    let mut knn_sum = 0.0f64;
    let t0 = Instant::now();
    for s in 0..knn_ops {
        let c = pos_of(seed ^ 0xF00D, s, 2);
        for nb in b.nearest_iter_with(c, &mut scratch).take(K) {
            knn_sum += nb.dist;
        }
    }
    let knn_secs = t0.elapsed().as_secs_f64();
    assert!(knn_sum.is_finite());
    b.check_invariants();

    Timings {
        update_ops,
        update_secs,
        search_ops,
        search_secs,
        search_hits: hits,
        knn_ops,
        knn_secs,
        visits_per_search,
    }
}

fn main() {
    let sim = srb_bench::base_config();
    figure_header("Backend", "object-index backends: update vs search (rstar vs grid)", &sim);
    let counts: &[usize] =
        if full_scale() { &[10_000, 40_000, 160_000] } else { &[1_000, 4_000, 16_000] };
    let sr_halves: &[f64] = &[0.001, 0.01];
    let seed = sim.seed;

    let mut rows: Vec<String> = Vec::new();
    for &n in counts {
        for &sr_half in sr_halves {
            let rstar_cfg = BackendConfig::RStar(TreeConfig::default());
            let grid_cfg = BackendConfig::Grid(GridConfig::default());
            // Best-of-2 per backend, interleaved so background load hits
            // both equally.
            let best = |f: &dyn Fn() -> Timings| {
                let a = f();
                let b = f();
                if a.update_secs + a.search_secs + a.knn_secs
                    <= b.update_secs + b.search_secs + b.knn_secs
                {
                    a
                } else {
                    b
                }
            };
            let results: Vec<(&str, Timings)> = vec![
                ("rstar", best(&|| run_backend::<RStarTree>(&rstar_cfg, n, sr_half, seed))),
                ("grid", best(&|| run_backend::<UniformGrid>(&grid_cfg, n, sr_half, seed))),
            ];
            for (label, t) in results {
                let upd = t.update_ops as f64 / t.update_secs.max(1e-12);
                let srch = t.search_ops as f64 / t.search_secs.max(1e-12);
                let knn = t.knn_ops as f64 / t.knn_secs.max(1e-12);
                println!(
                    "N={n:>7} sr={sr_half:<6} {label:<6} update={upd:>12.0}/s search={srch:>10.0}/s kNN={knn:>10.0}/s visits/search={:>7.1}",
                    t.visits_per_search,
                );
                let line = serde_json::json!({
                    "figure": "backend",
                    "series": format!("{label} sr={sr_half}"),
                    "backend": label,
                    "n_objects": n as u64,
                    "sr_half": sr_half,
                    "updates_per_sec": upd,
                    "searches_per_sec": srch,
                    "knn_per_sec": knn,
                    "search_hits": t.search_hits,
                    "visits_per_search": t.visits_per_search,
                    "update_ops": t.update_ops,
                    "search_ops": t.search_ops,
                    "knn_ops": t.knn_ops,
                });
                println!("JSON {line}");
                rows.push(line.to_string());
            }
        }
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_backend.json");
    let body = format!("[\n  {}\n]\n", rows.join(",\n  "));
    match srb_durable::atomic::atomic_write(std::path::Path::new(path), body.as_bytes()) {
        Ok(()) => println!("\nwrote {}", path),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
