//! `mem` — memory-plane benchmark for the allocation-free batch path.
//!
//! Drives the same rotating-movers update workload as `scaling`/`micro`
//! through the *sequential* batch engine twice per configuration:
//!
//! - **cold**: `drop_scratch_capacity()` before every batch, so each batch
//!   rebuilds its maps and vectors from nothing — the behavior before the
//!   scratch-arena refactor;
//! - **steady**: the normal path, where the `BatchScratch`/`CoordScratch`
//!   arenas and the caller's response buffer are cleared and reused.
//!
//! A counting global allocator reports heap allocations per batch for both
//! modes (steady must be 0 after warmup — pinned separately by the
//! `alloc_steady` test), and the throughput delta is the refactor's win.
//! Rows land in `BENCH_mem.json` at the repo root.

use srb_bench::{figure_header, full_scale};
use srb_core::{
    FnProvider, ObjectId, SequencedUpdate, ServerConfig, ShardedServer, UpdateResponse,
};
use srb_geom::Point;
use srb_sim::{generate_workload, SimConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System` plus a relaxed counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Updates pushed through the timed window of each mode, independent of
/// batch size (so every row is comparable and small batches get enough
/// rounds to rise above timer noise).
const TARGET_UPDATES: u64 = 20_000;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pos_of(seed: u64, obj: u64, round: u64) -> Point {
    let h = splitmix64(seed ^ obj.wrapping_mul(0x9E37_79B9) ^ (round << 40));
    let x = (h >> 32) as f64 / u32::MAX as f64;
    let y = (h & 0xFFFF_FFFF) as f64 / u32::MAX as f64;
    Point::new(x.clamp(0.0, 1.0), y.clamp(0.0, 1.0))
}

#[derive(Clone)]
struct ModeResult {
    updates: u64,
    seconds: f64,
    allocs: u64,
}

impl ModeResult {
    fn throughput(&self) -> f64 {
        self.updates as f64 / self.seconds.max(1e-12)
    }

    fn allocs_per_update(&self) -> f64 {
        self.allocs as f64 / self.updates.max(1) as f64
    }
}

/// Builds a populated server and pushes ~[`TARGET_UPDATES`] through the
/// sequential batch path in batches of `n_objects / groups` movers (a
/// rotating cohort; `groups == n_objects` exercises the single-report
/// path). `cold` drops every scratch capacity before each batch — the
/// allocate-per-batch behavior this refactor removed.
fn run_mode(
    shards: usize,
    n_objects: usize,
    groups: u64,
    sim: &SimConfig,
    cold: bool,
) -> ModeResult {
    let batch_size = (n_objects as u64 / groups).max(1);
    let rounds = (TARGET_UPDATES / batch_size).max(1);
    let warmup = (rounds / 10).max(10);
    let server_cfg = ServerConfig {
        space: sim.space,
        grid_m: sim.grid_m,
        max_speed: Some(sim.mean_speed * 4.0),
        ..ServerConfig::default()
    };
    let mut server = ShardedServer::new(server_cfg, shards);

    let seed = sim.seed;
    let mut positions: Vec<Point> = (0..n_objects).map(|i| pos_of(seed, i as u64, 0)).collect();
    {
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        for (i, &p) in snapshot.iter().enumerate() {
            server
                .add_object(ObjectId(i as u32), p, &mut provider, 0.0)
                .expect("fresh object ids are unique");
        }
        let specs = generate_workload(&SimConfig { n_objects, ..*sim });
        for spec in specs {
            server.register_query(spec, &mut provider, 0.0);
        }
    }

    let mut out: Vec<(ObjectId, UpdateResponse)> = Vec::new();
    let mut allocs = 0u64;
    // (nanoseconds, updates) per timed round; the tail of the sorted list is
    // trimmed before summing so rounds poisoned by scheduler preemption
    // don't drown the signal.
    let mut samples: Vec<(u64, u64)> = Vec::new();
    for round in 1..=warmup + rounds {
        let movers: Vec<ObjectId> = (0..n_objects)
            .filter(|i| (*i as u64) % groups == round % groups)
            .map(|i| ObjectId(i as u32))
            .collect();
        for &id in &movers {
            // Local jitter (the micro update workload): each mover drifts a
            // little and reports, instead of teleporting across the space —
            // result churn stays realistic and the batch plumbing dominates.
            let h = splitmix64(seed ^ (id.0 as u64) << 20 ^ round);
            let dx = ((h >> 32) as f64 / u32::MAX as f64 - 0.5) * 0.01;
            let dy = ((h & 0xFFFF_FFFF) as f64 / u32::MAX as f64 - 0.5) * 0.01;
            let p = positions[id.index()];
            positions[id.index()] =
                Point::new((p.x + dx).clamp(0.0, 1.0), (p.y + dy).clamp(0.0, 1.0));
        }
        let batch: Vec<SequencedUpdate> = movers
            .iter()
            .map(|&id| SequencedUpdate { id, pos: positions[id.index()], seq: round })
            .collect();
        let snapshot = positions.clone();
        let mut provider = FnProvider(|id: ObjectId| snapshot[id.index()]);
        let now = round as f64 * 0.1;
        if cold {
            server.drop_scratch_capacity();
            out = Vec::new();
        } else {
            out.clear();
        }
        let timed = round > warmup;
        let a0 = ALLOCS.load(Ordering::Relaxed);
        let t0 = Instant::now();
        server.handle_sequenced_updates_into(&batch, &mut provider, now, &mut out);
        let dt = t0.elapsed().as_nanos() as u64;
        let da = ALLOCS.load(Ordering::Relaxed) - a0;
        assert_eq!(out.len(), batch.len(), "every mover gets a response");
        if timed {
            allocs += da;
            samples.push((dt, batch.len() as u64));
        }
    }
    server.check_invariants();
    // Trimmed sum: drop the slowest 10% of rounds (preemption outliers).
    let total_updates: u64 = samples.iter().map(|&(_, u)| u).sum();
    samples.sort_unstable();
    let keep = samples.len() - samples.len() / 10;
    let (mut ns, mut updates) = (0u64, 0u64);
    for &(dt, u) in &samples[..keep] {
        ns += dt;
        updates += u;
    }
    // Allocations are deterministic per round, so report them against the
    // full (untrimmed) update count.
    ModeResult {
        updates,
        seconds: ns as f64 / 1e9,
        allocs: allocs * updates / total_updates.max(1),
    }
}

fn main() {
    let sim = srb_bench::base_config();
    figure_header("Mem", "allocation-free batch path (cold vs steady scratch)", &sim);
    let n_objects: usize = if full_scale() { 20_000 } else { 2_000 };
    // (shards, rotating groups): groups = N/batch_size. The single-report
    // rows (groups = N) are where per-operation buffer construction used to
    // dominate; the N/10 rows amortize it over a large batch.
    let cells: &[(usize, u64)] = &[(1, n_objects as u64), (1, 10), (4, n_objects as u64), (4, 10)];
    println!("    target={TARGET_UPDATES} updates per mode, sequential batch path");

    // Interleaved best-of-4 per mode: cold/steady runs alternate so clock
    // drift and background load hit both modes equally, and the min
    // wall-clock run per mode is the least-disturbed one (Criterion's
    // lower-bound policy).
    let best_pair = |shards: usize, groups: u64| {
        let runs: Vec<(ModeResult, ModeResult)> = (0..4)
            .map(|_| {
                (
                    run_mode(shards, n_objects, groups, &sim, true),
                    run_mode(shards, n_objects, groups, &sim, false),
                )
            })
            .collect();
        let pick = |f: fn(&(ModeResult, ModeResult)) -> &ModeResult| {
            runs.iter().map(f).min_by(|a, b| a.seconds.total_cmp(&b.seconds)).expect("four runs")
        };
        (pick(|r| &r.0).clone(), pick(|r| &r.1).clone())
    };

    let mut rows: Vec<String> = Vec::new();
    for &(shards, groups) in cells {
        let batch_size = (n_objects as u64 / groups).max(1);
        let (cold, steady) = best_pair(shards, groups);
        let speedup = steady.throughput() / cold.throughput().max(1e-12);
        println!(
            "N={:>7} shards={:<2} batch={:<5} cold={:>10.0} upd/s ({:>6.2} allocs/upd)  steady={:>10.0} upd/s ({:>6.2} allocs/upd)  speedup={:>5.2}x",
            n_objects,
            shards,
            batch_size,
            cold.throughput(),
            cold.allocs_per_update(),
            steady.throughput(),
            steady.allocs_per_update(),
            speedup,
        );
        let line = serde_json::json!({
            "figure": "mem",
            "series": format!("shards={shards} batch={batch_size}"),
            "shards": shards as u64,
            "n_objects": n_objects as u64,
            "batch_size": batch_size,
            "updates": steady.updates,
            "cold_seconds": cold.seconds,
            "cold_updates_per_sec": cold.throughput(),
            "cold_allocs_per_update": cold.allocs_per_update(),
            "steady_seconds": steady.seconds,
            "steady_updates_per_sec": steady.throughput(),
            "steady_allocs_per_update": steady.allocs_per_update(),
            "speedup_steady_vs_cold": speedup,
        });
        println!("JSON {line}");
        rows.push(line.to_string());
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mem.json");
    let body = format!("[\n  {}\n]\n", rows.join(",\n  "));
    match srb_durable::atomic::atomic_write(std::path::Path::new(path), body.as_bytes()) {
        Ok(()) => println!("\nwrote {}", path),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}
