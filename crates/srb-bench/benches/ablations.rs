//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. **Batch vs per-query range safe regions** (§5.3): the staircase
//!    algorithm over all blocking rectangles at once versus intersecting
//!    individually-computed complements.
//! 2. **Bottom-up update vs delete+reinsert** in the R*-tree (§3.2).
//! 3. **STR bulk load vs one-by-one insertion** (the PRD rebuild path).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use srb_geom::{irlp_rect_complement_batch, OrdinaryPerimeter, Point, Rect};
use srb_index::{bulk_load, LeafEntry, RStarTree, TreeConfig};
use std::hint::black_box;

fn bench_batch_vs_individual(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_range_safe_region");
    let cell = Rect::new(Point::new(0.4, 0.4), Point::new(0.42, 0.42));
    let p = Point::new(0.41, 0.41);
    let mut rng = StdRng::seed_from_u64(9);
    let blocks: Vec<Rect> = (0..12)
        .map(|_| {
            let c = Point::new(0.4 + rng.gen::<f64>() * 0.02, 0.4 + rng.gen::<f64>() * 0.02);
            Rect::centered(c, 0.0015, 0.0015)
        })
        .filter(|r| !(p.x > r.min().x && p.x < r.max().x && p.y > r.min().y && p.y < r.max().y))
        .collect();

    g.bench_function("batch_staircase", |b| {
        b.iter(|| irlp_rect_complement_batch(black_box(&blocks), p, &cell, &OrdinaryPerimeter))
    });
    g.bench_function("individual_intersection", |b| {
        b.iter(|| {
            let mut sr = cell;
            for blk in &blocks {
                let r = irlp_rect_complement_batch(
                    std::slice::from_ref(blk),
                    p,
                    &cell,
                    &OrdinaryPerimeter,
                );
                sr = sr.intersection(&r).unwrap_or(Rect::point(p));
            }
            sr
        })
    });
    // Also report the quality difference once.
    let batch = irlp_rect_complement_batch(&blocks, p, &cell, &OrdinaryPerimeter);
    let mut indiv = cell;
    for blk in &blocks {
        let r = irlp_rect_complement_batch(std::slice::from_ref(blk), p, &cell, &OrdinaryPerimeter);
        indiv = indiv.intersection(&r).unwrap_or(Rect::point(p));
    }
    println!(
        "\n[ablation] safe-region perimeter: batch {:.6} vs individual {:.6} ({:+.1}%)",
        batch.perimeter(),
        indiv.perimeter(),
        100.0 * (batch.perimeter() - indiv.perimeter()) / indiv.perimeter().max(1e-12)
    );
    g.finish();
}

fn bench_update_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_index_update");
    let mut rng = StdRng::seed_from_u64(4);
    let pts: Vec<Point> = (0..10_000).map(|_| Point::new(rng.gen(), rng.gen())).collect();

    let build = || {
        let mut t = RStarTree::default();
        for (i, p) in pts.iter().enumerate() {
            t.insert(i as u64, Rect::centered(*p, 0.002, 0.002));
        }
        t
    };

    g.bench_function("bottom_up_update", |b| {
        let mut tree = build();
        let mut i = 0u64;
        b.iter(|| {
            let id = i % 10_000;
            let p = pts[id as usize];
            // Small wiggle: mostly hits the in-place fast path.
            tree.update(id, Rect::centered(p, 0.0019, 0.0021));
            i += 1;
        })
    });
    g.bench_function("delete_plus_reinsert", |b| {
        let mut tree = build();
        let mut i = 0u64;
        b.iter(|| {
            let id = i % 10_000;
            let p = pts[id as usize];
            tree.remove(id);
            tree.insert(id, Rect::centered(p, 0.0019, 0.0021));
            i += 1;
        })
    });
    g.finish();
}

fn bench_build_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_index_build");
    g.sample_size(20);
    let mut rng = StdRng::seed_from_u64(8);
    let entries: Vec<LeafEntry> = (0..20_000)
        .map(|i| LeafEntry { id: i as u64, rect: Rect::point(Point::new(rng.gen(), rng.gen())) })
        .collect();

    g.bench_function("str_bulk_load_20k", |b| {
        b.iter_batched(
            || entries.clone(),
            |es| bulk_load(es, TreeConfig::default()),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("insert_one_by_one_20k", |b| {
        b.iter_batched(
            || entries.clone(),
            |es| {
                let mut t = RStarTree::default();
                for e in es {
                    t.insert(e.id, e.rect);
                }
                t
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_batch_vs_individual,
    bench_update_strategies,
    bench_build_strategies
);
criterion_main!(benches);
