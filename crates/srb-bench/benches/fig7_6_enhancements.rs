//! Figure 7.6 — the §6 enhancements (paper §7.5).
//!
//! Panel (a): communication-cost improvement (%) of the reachability
//! circle (maximum-speed assumption) as the query load W varies. Expected
//! shape: 20–40% improvement, shrinking as W grows (smaller safe regions
//! are covered by the expanding circle sooner).
//!
//! Panel (b): improvement (%) of the weighted perimeter (steady movement,
//! D = 0.5) as the movement period t̄v varies. Expected shape: negative or
//! nil at very small t̄v (directions change too fast), +5–15% at larger
//! t̄v.

use srb_bench::{base_config, figure_header, full_scale, json_row, run_row};
use srb_sim::{Scheme, SimConfig};

fn main() {
    let base = base_config();
    figure_header("Figure 7.6(a)", "reachability-circle improvement vs W", &base);
    let ws: &[usize] = if full_scale() { &[10, 100, 1000] } else { &[10, 30, 60, 120] };
    for &w in ws {
        let plain = SimConfig { n_queries: w, ..base };
        let enhanced = SimConfig { reachability: true, ..plain };
        println!("\nW = {w}");
        let m0 = run_row("SRB", Scheme::Srb, &plain);
        let m1 = run_row("SRB+reach", Scheme::Srb, &enhanced);
        let improvement = 100.0 * (m0.comm_cost - m1.comm_cost) / m0.comm_cost;
        println!("{:<18} improvement: {improvement:+.1}%", "");
        json_row("7.6a", "SRB", w as f64, &m0);
        json_row("7.6a", "SRB+reach", w as f64, &m1);
    }

    figure_header("Figure 7.6(b)", "weighted-perimeter improvement vs t̄v (D=0.5)", &base);
    for &tv in &[0.001, 0.01, 0.1, 0.5, 1.0] {
        let plain = SimConfig { mean_period: tv, ..base };
        let enhanced = SimConfig { steadiness: Some(0.5), ..plain };
        println!("\nt̄v = {tv}");
        let m0 = run_row("SRB", Scheme::Srb, &plain);
        let m1 = run_row("SRB+steady", Scheme::Srb, &enhanced);
        let improvement = 100.0 * (m0.comm_cost - m1.comm_cost) / m0.comm_cost;
        println!("{:<18} improvement: {improvement:+.1}%", "");
        json_row("7.6b", "SRB", tv, &m0);
        json_row("7.6b", "SRB+steady", tv, &m1);
    }
}
