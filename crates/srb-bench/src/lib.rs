//! # srb-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§7). Each figure has a `harness = false` bench target that
//! prints the same series the paper plots; `cargo bench -p srb-bench`
//! runs them all plus the Criterion micro-benchmarks.
//!
//! Scale: by default the harness runs a laptop-scale configuration that
//! preserves the paper's parameter *ratios* (see `DESIGN.md` §5). Set
//! `SRB_FULL_SCALE=1` to run the paper's full Table 7.1 scale (hours).

#![warn(missing_docs)]

use srb_sim::{RunMetrics, Scheme, SimConfig};

/// Returns the base configuration for figure harnesses: laptop scale unless
/// `SRB_FULL_SCALE` is set.
pub fn base_config() -> SimConfig {
    if full_scale() {
        SimConfig::paper_defaults()
    } else {
        SimConfig {
            // Preserves the paper's query/object density ratio W/N = 0.01.
            n_objects: 2_000,
            n_queries: 20,
            duration: 8.0,
            ..SimConfig::paper_defaults()
        }
    }
}

/// True when the full Table 7.1 scale was requested.
pub fn full_scale() -> bool {
    std::env::var_os("SRB_FULL_SCALE").is_some()
}

/// Runs a scheme and prints one table row.
pub fn run_row(label: &str, scheme: Scheme, cfg: &SimConfig) -> RunMetrics {
    let m = srb_sim::run_scheme(scheme, cfg);
    println!(
        "{label:<18} accuracy={:>7.4}  comm={:>9.4}  comm/dist={:>9.3}  cpu_s/tu={:>9.5}  work/tu={:>10.0}  uplinks={:>8}  probes={:>7}",
        m.accuracy, m.comm_cost, m.comm_cost_per_distance, m.cpu_seconds_per_tu,
        m.work_units_per_tu, m.uplinks, m.probes
    );
    m
}

/// Prints a figure header in a uniform format.
pub fn figure_header(id: &str, title: &str, cfg: &SimConfig) {
    println!("\n=== {id}: {title} ===");
    println!(
        "    N={} W={} duration={} v̄={} t̄v={} q_len={} k_max={} M={} seed={}{}",
        cfg.n_objects,
        cfg.n_queries,
        cfg.duration,
        cfg.mean_speed,
        cfg.mean_period,
        cfg.q_len,
        cfg.k_max,
        cfg.grid_m,
        cfg.seed,
        if full_scale() { " [FULL SCALE]" } else { " [bench scale]" }
    );
}

/// Emits one row of machine-readable JSON alongside the printed tables
/// (collected by EXPERIMENTS.md tooling).
pub fn json_row(figure: &str, series: &str, x: f64, m: &RunMetrics) {
    let line = serde_json::json!({
        "figure": figure,
        "series": series,
        "x": x,
        "accuracy": m.accuracy,
        "comm_cost": m.comm_cost,
        "comm_cost_per_distance": m.comm_cost_per_distance,
        "cpu_seconds_per_tu": m.cpu_seconds_per_tu,
        "work_units_per_tu": m.work_units_per_tu,
        "uplinks": m.uplinks,
        "probes": m.probes,
    });
    println!("JSON {line}");
}
