use crate::crash::CrashPoint;
use std::fmt;

/// Everything that can go wrong in the durability plane. Recovery code
/// never panics on corrupt input — it returns one of these (or degrades
/// gracefully, for a torn log *tail*).
#[derive(Debug)]
pub enum DurableError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// A checkpoint or log file does not start with its magic bytes.
    BadMagic,
    /// A checkpoint's CRC does not cover its contents.
    CrcMismatch,
    /// A record or checkpoint ended before its declared length.
    ShortRecord,
    /// A file's embedded generation or log index disagrees with its name
    /// or with the checkpoint it must pair with.
    GenerationMismatch {
        /// The generation the caller expected.
        expected: u64,
        /// The generation actually found in the file.
        found: u64,
    },
    /// Structurally invalid payload (a CRC-valid frame that decodes to an
    /// impossible value).
    Corrupt(&'static str),
    /// An armed [`CrashPoint`] fired: the simulated process died here. The
    /// on-disk state reflects exactly what a real crash at this boundary
    /// would leave behind.
    Injected(CrashPoint),
    /// The store was poisoned by an earlier failure; no further writes are
    /// accepted (the process is considered dead — recover from disk).
    Poisoned,
    /// Recovery found no usable checkpoint in the directory.
    NoState,
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "i/o error: {e}"),
            DurableError::BadMagic => write!(f, "bad magic bytes"),
            DurableError::CrcMismatch => write!(f, "checksum mismatch"),
            DurableError::ShortRecord => write!(f, "record shorter than declared"),
            DurableError::GenerationMismatch { expected, found } => {
                write!(f, "generation mismatch: expected {expected}, found {found}")
            }
            DurableError::Corrupt(what) => write!(f, "corrupt payload: {what}"),
            DurableError::Injected(p) => write!(f, "injected crash at {p:?}"),
            DurableError::Poisoned => write!(f, "store poisoned by an earlier failure"),
            DurableError::NoState => write!(f, "no usable checkpoint found"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}
