//! Fixed-width little-endian encoding helpers shared by the operation-log
//! record codec and the checkpoint serializers.
//!
//! Floating-point values travel as raw [`f64::to_bits`] words, so a decode
//! reproduces the exact bit pattern — the foundation of the bit-identical
//! recovery guarantee. The decoder is total: every read returns a typed
//! error instead of panicking, whatever the input bytes.

use crate::error::DurableError;

/// Appends a `u8`.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a `bool` as one byte.
pub fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

/// Appends a `u16` little-endian.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `usize` as a `u64`.
pub fn put_usize(buf: &mut Vec<u8>, v: usize) {
    put_u64(buf, v as u64);
}

/// Appends an `f64` as its raw bit pattern.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

/// A bounds-checked reader over an encoded byte slice.
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DurableError> {
        if self.remaining() < n {
            return Err(DurableError::ShortRecord);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, DurableError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `bool` (any non-zero byte is `true`).
    pub fn bool(&mut self) -> Result<bool, DurableError> {
        Ok(self.u8()? != 0)
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DurableError> {
        let s = self.take(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DurableError> {
        let s = self.take(4)?;
        Ok(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DurableError> {
        let s = self.take(8)?;
        Ok(u64::from_le_bytes([s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7]]))
    }

    /// Reads a `usize` encoded as `u64`, rejecting values that cannot fit.
    pub fn usize(&mut self) -> Result<usize, DurableError> {
        usize::try_from(self.u64()?).map_err(|_| DurableError::Corrupt("usize overflow"))
    }

    /// Reads a length prefix that must be plausible given the bytes left
    /// (each element needs at least `min_elem_bytes`), bounding allocations
    /// on corrupt input.
    pub fn len(&mut self, min_elem_bytes: usize) -> Result<usize, DurableError> {
        let n = self.usize()?;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(DurableError::Corrupt("length exceeds remaining bytes"));
        }
        Ok(n)
    }

    /// Reads an `f64` from its raw bit pattern.
    pub fn f64(&mut self) -> Result<f64, DurableError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Fails unless every byte was consumed.
    pub fn finish(&self) -> Result<(), DurableError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DurableError::Corrupt("trailing bytes"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut b = Vec::new();
        put_u8(&mut b, 0xAB);
        put_bool(&mut b, true);
        put_u16(&mut b, 0xBEEF);
        put_u32(&mut b, 0xDEAD_BEEF);
        put_u64(&mut b, u64::MAX - 1);
        put_usize(&mut b, 42);
        put_f64(&mut b, -0.0);
        put_f64(&mut b, f64::NAN);
        let mut d = Dec::new(&b);
        assert_eq!(d.u8().unwrap(), 0xAB);
        assert!(d.bool().unwrap());
        assert_eq!(d.u16().unwrap(), 0xBEEF);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.usize().unwrap(), 42);
        // -0.0 and NaN round-trip bit-exactly.
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.f64().unwrap().is_nan());
        d.finish().unwrap();
    }

    #[test]
    fn short_reads_error_instead_of_panicking() {
        let mut d = Dec::new(&[1, 2, 3]);
        assert!(matches!(d.u64(), Err(DurableError::ShortRecord)));
        // The failed read consumed nothing usable; smaller reads still work.
        let mut d = Dec::new(&[1, 2, 3]);
        assert_eq!(d.u16().unwrap(), 0x0201);
        assert!(matches!(d.u16(), Err(DurableError::ShortRecord)));
    }

    #[test]
    fn hostile_length_prefix_is_rejected() {
        let mut b = Vec::new();
        put_u64(&mut b, u64::MAX);
        let mut d = Dec::new(&b);
        assert!(d.len(16).is_err());
    }
}
