//! Durability plane for the SRB framework.
//!
//! This crate owns every byte that touches stable storage:
//!
//! - [`codec`]: a fixed-width little-endian encoder/decoder (`f64` travels
//!   as [`f64::to_bits`], so round trips are bit-exact);
//! - [`crc32`]: the IEEE CRC-32 used to frame log records and seal
//!   checkpoints (hand-rolled — the workspace takes no new dependencies);
//! - [`frame`]: length-prefixed, CRC-framed records with graceful
//!   torn-tail detection;
//! - [`log`]: an append-only log writer with an explicit *durable prefix*
//!   (group commit buffers frames in memory until a sync boundary);
//! - [`store`]: the generation store — one checkpoint file plus a set of
//!   logs per generation, rotated copy-on-write behind an atomic rename;
//! - [`atomic`]: the shared temp-file + rename + directory-fsync helper
//!   every JSON/metrics writer in the workspace reuses;
//! - [`crash`]: the crash-injection hook. Every fsync/rename boundary in
//!   this crate consults [`crash::fires`], so a test can arm a
//!   [`CrashPoint`] and observe exactly the disk state a real crash at
//!   that boundary would leave behind.
//!
//! The crate is deliberately engine-agnostic: it moves opaque payload
//! bytes. `srb-core` layers the operation-record codec, checkpoint
//! serialization, and replay on top.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod atomic;
pub mod codec;
pub mod crash;
pub mod crc32;
pub mod frame;
pub mod log;
pub mod store;

mod error;

pub use codec::Dec;
pub use crash::CrashPoint;
pub use error::DurableError;
pub use store::{GenerationFrames, Recovered, RecoveryStats, Store, SyncPolicy};
