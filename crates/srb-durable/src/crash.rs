//! Crash-point injection.
//!
//! Every fsync/rename boundary in the durability plane consults
//! [`fires`] before (or after) the operation it guards. A test arms a
//! [`CrashPoint`] with [`arm`]; when the boundary is reached for the
//! n-th time, the durability code *emulates the crash* — it leaves the
//! file system in exactly the state a power cut at that instant would,
//! then returns [`DurableError::Injected`](crate::DurableError::Injected)
//! so the engine poisons itself. The harness then drops the engine and
//! recovers from disk, as a restarted process would.
//!
//! The default plan ([`arm`]) is thread-local: crash tests in different
//! threads do not interfere, and production code pays one thread-local
//! read per boundary (zero when nothing is armed). Boundaries that run
//! on pipeline worker threads — a WAL partition append happens on the
//! worker that owns the shard — are reachable only through the shared
//! plan ([`arm_shared`]), a process-wide atomic countdown whose
//! disarmed fast path is a single relaxed load.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A fsync/rename boundary where a crash can be injected.
///
/// The `Log*` points cover the append/commit path; the `Ckpt*` points
/// walk the copy-on-write checkpoint protocol in order: write the temp
/// file, sync it, rename it over the stable name, sync the directory,
/// rotate to fresh logs, prune old generations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Crash while a frame is being appended to the in-memory group-commit
    /// buffer: the frame is never buffered, nothing reaches disk.
    LogAppend,
    /// Crash mid-`write`: a torn prefix of the pending bytes lands in the
    /// file, the rest is lost.
    LogWrite,
    /// Crash after the write but before `fsync`: the kernel never flushed,
    /// so everything past the durable prefix is lost.
    LogPreSync,
    /// Crash immediately after a successful `fsync`: the data survives.
    LogPostSync,
    /// Crash mid-write of the checkpoint temp file: a torn temp remains.
    CkptWrite,
    /// Crash after writing the temp file but before syncing it: the temp
    /// is truncated to an arbitrary prefix.
    CkptPreSync,
    /// Crash after the temp file is synced but before the rename: the
    /// stable name still points at the previous generation.
    CkptPostSync,
    /// Crash after the rename but before the directory fsync: the rename
    /// itself may not be durable, so recovery sees the old name.
    CkptPostRename,
    /// Crash after the directory fsync: the checkpoint is durable, but the
    /// fresh-generation logs were never created.
    CkptPostDirSync,
    /// Crash after the fresh-generation log group was created (headers
    /// unsynced) but before the single group dir-sync: none of the new
    /// log files are guaranteed to survive.
    CkptLogUnsynced,
    /// Crash mid-rotation: fresh-generation logs exist, old-generation
    /// files have not been pruned yet.
    CkptRotate,
    /// Crash mid-prune: some old-generation files deleted, some not.
    CkptPrune,
}

impl CrashPoint {
    /// Every injectable boundary, in protocol order.
    pub const ALL: [CrashPoint; 12] = [
        CrashPoint::LogAppend,
        CrashPoint::LogWrite,
        CrashPoint::LogPreSync,
        CrashPoint::LogPostSync,
        CrashPoint::CkptWrite,
        CrashPoint::CkptPreSync,
        CrashPoint::CkptPostSync,
        CrashPoint::CkptPostRename,
        CrashPoint::CkptPostDirSync,
        CrashPoint::CkptLogUnsynced,
        CrashPoint::CkptRotate,
        CrashPoint::CkptPrune,
    ];

    /// This point's position in [`CrashPoint::ALL`] (used by the packed
    /// shared-arming encoding).
    fn ordinal(self) -> u64 {
        CrashPoint::ALL.iter().position(|&p| p == self).expect("point listed in ALL") as u64
    }
}

thread_local! {
    static ARMED: Cell<Option<(CrashPoint, u32)>> = const { Cell::new(None) };
    static FIRED: Cell<bool> = const { Cell::new(false) };
}

/// The process-wide arming plan, packed into one atomic so the disarmed
/// fast path is a single relaxed load of zero. Encoding:
/// `(ordinal + 1) << 32 | (nth + 1)`; `0` means disarmed.
static SHARED_PLAN: AtomicU64 = AtomicU64::new(0);
static SHARED_FIRED: AtomicBool = AtomicBool::new(false);

fn encode_plan(point: CrashPoint, nth: u32) -> u64 {
    ((point.ordinal() + 1) << 32) | (u64::from(nth) + 1)
}

/// Arms `point` to fire the `nth` time (0-based) its boundary is reached
/// on this thread. Clears any previous plan and the fired flag.
pub fn arm(point: CrashPoint, nth: u32) {
    ARMED.with(|a| a.set(Some((point, nth))));
    FIRED.with(|f| f.set(false));
}

/// Arms `point` process-wide: the boundary fires on *whichever thread*
/// reaches it the `nth` time (0-based) — required for boundaries that
/// live on pipeline worker threads, which a test thread's thread-local
/// plan can never reach. Clears any previous shared plan and flag.
pub fn arm_shared(point: CrashPoint, nth: u32) {
    SHARED_FIRED.store(false, Ordering::SeqCst);
    SHARED_PLAN.store(encode_plan(point, nth), Ordering::SeqCst);
}

/// Disarms any pending plan, thread-local and shared (the fired flags
/// are left for [`fired`]).
pub fn disarm() {
    ARMED.with(|a| a.set(None));
    SHARED_PLAN.store(0, Ordering::SeqCst);
}

/// Consulted by the durability plane at each boundary. Returns `true`
/// exactly once — when an armed point's countdown reaches zero — and
/// disarms itself, so a recovery running on the same thread cannot
/// re-trigger the crash. The thread-local plan is checked first, then
/// the shared one.
pub fn fires(point: CrashPoint) -> bool {
    let local = ARMED.with(|a| match a.get() {
        Some((p, n)) if p == point => {
            if n == 0 {
                a.set(None);
                FIRED.with(|f| f.set(true));
                true
            } else {
                a.set(Some((p, n - 1)));
                false
            }
        }
        _ => false,
    });
    if local {
        return true;
    }
    fires_shared(point)
}

fn fires_shared(point: CrashPoint) -> bool {
    let mut cur = SHARED_PLAN.load(Ordering::Relaxed);
    if cur == 0 {
        return false;
    }
    let want = point.ordinal() + 1;
    loop {
        if cur >> 32 != want {
            return false;
        }
        let nth = cur & 0xFFFF_FFFF;
        let next = if nth <= 1 { 0 } else { cur - 1 };
        match SHARED_PLAN.compare_exchange_weak(cur, next, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => {
                if next == 0 {
                    SHARED_FIRED.store(true, Ordering::SeqCst);
                    return true;
                }
                return false;
            }
            Err(actual) => {
                if actual == 0 {
                    return false;
                }
                cur = actual;
            }
        }
    }
}

/// Whether the most recently [`arm`]ed thread-local plan has fired.
/// Shared plans report through [`fired_shared`] — keeping the two
/// observers separate lets thread-local crash tests run in parallel
/// with a shared-armed harness without false positives.
pub fn fired() -> bool {
    FIRED.with(|f| f.get())
}

/// Whether the most recently [`arm_shared`]-ed plan has fired (on any
/// thread).
pub fn fired_shared() -> bool {
    SHARED_FIRED.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_once_on_the_nth_visit() {
        arm(CrashPoint::LogPreSync, 2);
        assert!(!fires(CrashPoint::LogPreSync));
        assert!(!fires(CrashPoint::CkptWrite), "other points never fire");
        assert!(!fires(CrashPoint::LogPreSync));
        assert!(!fired());
        assert!(fires(CrashPoint::LogPreSync));
        assert!(fired());
        // One-shot: the same boundary is safe to cross during recovery.
        assert!(!fires(CrashPoint::LogPreSync));
    }

    #[test]
    fn disarm_cancels_the_plan() {
        arm(CrashPoint::CkptPostRename, 0);
        disarm();
        assert!(!fires(CrashPoint::CkptPostRename));
        assert!(!fired());
    }
}
