//! Crash-point injection.
//!
//! Every fsync/rename boundary in the durability plane consults
//! [`fires`] before (or after) the operation it guards. A test arms a
//! [`CrashPoint`] with [`arm`]; when the boundary is reached for the
//! n-th time, the durability code *emulates the crash* — it leaves the
//! file system in exactly the state a power cut at that instant would,
//! then returns [`DurableError::Injected`](crate::DurableError::Injected)
//! so the engine poisons itself. The harness then drops the engine and
//! recovers from disk, as a restarted process would.
//!
//! The armed plan is thread-local: crash tests in different threads do
//! not interfere, and production code pays one thread-local read per
//! boundary (zero when nothing is armed).

use std::cell::Cell;

/// A fsync/rename boundary where a crash can be injected.
///
/// The `Log*` points cover the append/commit path; the `Ckpt*` points
/// walk the copy-on-write checkpoint protocol in order: write the temp
/// file, sync it, rename it over the stable name, sync the directory,
/// rotate to fresh logs, prune old generations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// Crash while a frame is being appended to the in-memory group-commit
    /// buffer: the frame is never buffered, nothing reaches disk.
    LogAppend,
    /// Crash mid-`write`: a torn prefix of the pending bytes lands in the
    /// file, the rest is lost.
    LogWrite,
    /// Crash after the write but before `fsync`: the kernel never flushed,
    /// so everything past the durable prefix is lost.
    LogPreSync,
    /// Crash immediately after a successful `fsync`: the data survives.
    LogPostSync,
    /// Crash mid-write of the checkpoint temp file: a torn temp remains.
    CkptWrite,
    /// Crash after writing the temp file but before syncing it: the temp
    /// is truncated to an arbitrary prefix.
    CkptPreSync,
    /// Crash after the temp file is synced but before the rename: the
    /// stable name still points at the previous generation.
    CkptPostSync,
    /// Crash after the rename but before the directory fsync: the rename
    /// itself may not be durable, so recovery sees the old name.
    CkptPostRename,
    /// Crash after the directory fsync: the checkpoint is durable, but the
    /// fresh-generation logs were never created.
    CkptPostDirSync,
    /// Crash mid-rotation: fresh-generation logs exist, old-generation
    /// files have not been pruned yet.
    CkptRotate,
    /// Crash mid-prune: some old-generation files deleted, some not.
    CkptPrune,
}

impl CrashPoint {
    /// Every injectable boundary, in protocol order.
    pub const ALL: [CrashPoint; 11] = [
        CrashPoint::LogAppend,
        CrashPoint::LogWrite,
        CrashPoint::LogPreSync,
        CrashPoint::LogPostSync,
        CrashPoint::CkptWrite,
        CrashPoint::CkptPreSync,
        CrashPoint::CkptPostSync,
        CrashPoint::CkptPostRename,
        CrashPoint::CkptPostDirSync,
        CrashPoint::CkptRotate,
        CrashPoint::CkptPrune,
    ];
}

thread_local! {
    static ARMED: Cell<Option<(CrashPoint, u32)>> = const { Cell::new(None) };
    static FIRED: Cell<bool> = const { Cell::new(false) };
}

/// Arms `point` to fire the `nth` time (0-based) its boundary is reached
/// on this thread. Clears any previous plan and the fired flag.
pub fn arm(point: CrashPoint, nth: u32) {
    ARMED.with(|a| a.set(Some((point, nth))));
    FIRED.with(|f| f.set(false));
}

/// Disarms any pending plan (the fired flag is left for [`fired`]).
pub fn disarm() {
    ARMED.with(|a| a.set(None));
}

/// Consulted by the durability plane at each boundary. Returns `true`
/// exactly once — when the armed point's countdown reaches zero — and
/// disarms itself, so a recovery running on the same thread cannot
/// re-trigger the crash.
pub fn fires(point: CrashPoint) -> bool {
    ARMED.with(|a| match a.get() {
        Some((p, n)) if p == point => {
            if n == 0 {
                a.set(None);
                FIRED.with(|f| f.set(true));
                true
            } else {
                a.set(Some((p, n - 1)));
                false
            }
        }
        _ => false,
    })
}

/// Whether the most recently armed plan has fired.
pub fn fired() -> bool {
    FIRED.with(|f| f.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_once_on_the_nth_visit() {
        arm(CrashPoint::LogPreSync, 2);
        assert!(!fires(CrashPoint::LogPreSync));
        assert!(!fires(CrashPoint::CkptWrite), "other points never fire");
        assert!(!fires(CrashPoint::LogPreSync));
        assert!(!fired());
        assert!(fires(CrashPoint::LogPreSync));
        assert!(fired());
        // One-shot: the same boundary is safe to cross during recovery.
        assert!(!fires(CrashPoint::LogPreSync));
    }

    #[test]
    fn disarm_cancels_the_plan() {
        arm(CrashPoint::CkptPostRename, 0);
        disarm();
        assert!(!fires(CrashPoint::CkptPostRename));
        assert!(!fired());
    }
}
