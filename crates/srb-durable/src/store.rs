//! The generation store: one checkpoint file plus a fixed set of
//! append-only logs per generation.
//!
//! On-disk layout inside the store directory:
//!
//! ```text
//! ckpt-<gen>        SRBCKP01 | gen u64 | len u64 | crc32 u32 | payload
//! log-<gen>-<idx>   SRBLOG01 | gen u64 | idx u64 | frames...
//! ```
//!
//! A checkpoint rotates the store copy-on-write: commit every log, write
//! the new checkpoint to a temp sibling, fsync, atomically rename it to
//! `ckpt-<gen+1>`, fsync the directory, create fresh `<gen+1>` logs, and
//! only then prune generations `<= gen-1`. Generation `gen` is kept as a
//! fallback root: if the newest checkpoint is ever unreadable, recovery
//! falls back one generation and replays *two* generations of logs,
//! reaching the exact same state.
//!
//! Every fsync/rename boundary consults [`crate::crash`], so the
//! crash-injection harness can kill the store at each step and prove
//! recovery is bit-identical.

use crate::crash::{self, CrashPoint};
use crate::crc32::crc32;
use crate::error::DurableError;
use crate::frame::read_frames;
use crate::log::{check_header, LogWriter, LOG_HEADER};
use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic bytes opening every checkpoint file.
pub const CKPT_MAGIC: &[u8; 8] = b"SRBCKP01";

/// When appended records are forced to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Never fsync automatically (tests and throughput ceilings only —
    /// a crash loses everything since the last explicit commit).
    Never,
    /// Fsync once every `group_ops` operations (group commit).
    #[default]
    GroupCommit,
    /// Fsync after every operation.
    Always,
}

/// Counters describing what recovery had to repair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Log tails physically truncated at the first invalid frame.
    pub tail_truncations: u64,
    /// Checkpoints that failed validation, forcing a fallback to an
    /// older generation.
    pub ckpt_fallbacks: u64,
    /// Log files whose header was unreadable (recreated empty).
    pub bad_logs: u64,
}

/// One generation's worth of replayable records.
pub struct GenerationFrames {
    /// The generation these records belong to.
    pub gen: u64,
    /// `logs[idx]` holds log `idx`'s record payloads, in append order.
    pub logs: Vec<Vec<Vec<u8>>>,
}

/// The result of [`Store::recover`].
pub struct Recovered {
    /// The reopened store, ready for appends on the active generation.
    pub store: Store,
    /// The generation whose checkpoint was loaded.
    pub ckpt_gen: u64,
    /// The checkpoint payload (engine state snapshot).
    pub payload: Vec<u8>,
    /// Records to replay on top of the checkpoint, oldest generation
    /// first. Shard-partition cursors must reset at each generation
    /// boundary.
    pub generations: Vec<GenerationFrames>,
    /// What recovery had to repair along the way.
    pub stats: RecoveryStats,
}

/// An open generation store.
pub struct Store {
    dir: PathBuf,
    gen: u64,
    /// Per-log writers. A slot is `None` only while that log is lent to
    /// a pipeline worker via [`Store::take_log`]; every commit-protocol
    /// operation requires the full set to be checked back in.
    logs: Vec<Option<LogWriter>>,
    policy: SyncPolicy,
    group_ops: u32,
    ops_since_sync: u32,
    poisoned: bool,
}

fn ckpt_path(dir: &Path, gen: u64) -> PathBuf {
    dir.join(format!("ckpt-{gen}"))
}

fn log_path(dir: &Path, gen: u64, idx: usize) -> PathBuf {
    dir.join(format!("log-{gen}-{idx}"))
}

/// Parses `ckpt-<gen>` / `log-<gen>-<idx>` file names.
enum StoreFile {
    Ckpt(u64),
    Log(u64),
    Other,
}

fn parse_name(name: &str) -> StoreFile {
    if let Some(g) = name.strip_prefix("ckpt-") {
        if let Ok(g) = g.parse() {
            return StoreFile::Ckpt(g);
        }
    } else if let Some(rest) = name.strip_prefix("log-") {
        if let Some((g, i)) = rest.split_once('-') {
            if let (Ok(g), Ok(_i)) = (g.parse::<u64>(), i.parse::<u64>()) {
                return StoreFile::Log(g);
            }
        }
    }
    StoreFile::Other
}

fn encode_ckpt(gen: u64, payload: &[u8]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(28 + payload.len());
    bytes.extend_from_slice(CKPT_MAGIC);
    bytes.extend_from_slice(&gen.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

fn read_ckpt(path: &Path, expected_gen: u64) -> Result<Vec<u8>, DurableError> {
    let data = fs::read(path)?;
    if data.len() < 28 {
        return Err(DurableError::ShortRecord);
    }
    if &data[..8] != CKPT_MAGIC {
        return Err(DurableError::BadMagic);
    }
    let gen = u64::from_le_bytes(data[8..16].try_into().unwrap());
    if gen != expected_gen {
        return Err(DurableError::GenerationMismatch { expected: expected_gen, found: gen });
    }
    let len = u64::from_le_bytes(data[16..24].try_into().unwrap());
    let crc = u32::from_le_bytes(data[24..28].try_into().unwrap());
    let len = usize::try_from(len).map_err(|_| DurableError::Corrupt("checkpoint length"))?;
    if data.len() - 28 < len {
        return Err(DurableError::ShortRecord);
    }
    let payload = &data[28..28 + len];
    if crc32(payload) != crc {
        return Err(DurableError::CrcMismatch);
    }
    Ok(payload.to_vec())
}

/// Writes checkpoint `gen`, fsyncs the directory, and creates that
/// generation's logs — the copy-on-write installation protocol, with a
/// crash point at every boundary.
fn install_generation(
    dir: &Path,
    gen: u64,
    payload: &[u8],
    n_logs: usize,
) -> Result<Vec<LogWriter>, DurableError> {
    let bytes = encode_ckpt(gen, payload);
    let tmp = dir.join(format!("ckpt-{gen}.tmp"));
    let stable = ckpt_path(dir, gen);

    let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
    if crash::fires(CrashPoint::CkptWrite) {
        // Power cut mid-write: a torn prefix of the checkpoint lands in
        // the temp file; the stable name is untouched.
        f.write_all(&bytes[..bytes.len() / 2])?;
        f.sync_data()?;
        return Err(DurableError::Injected(CrashPoint::CkptWrite));
    }
    f.write_all(&bytes)?;
    if crash::fires(CrashPoint::CkptPreSync) {
        // Power cut before fsync: the page cache is lost and the temp
        // file rolls back to an arbitrary prefix.
        f.set_len(bytes.len() as u64 / 2)?;
        f.sync_data()?;
        return Err(DurableError::Injected(CrashPoint::CkptPreSync));
    }
    let sw = srb_obs::Stopwatch::start();
    f.sync_data()?;
    if let Some(ns) = sw.elapsed_ns() {
        srb_obs::histogram!("durable.ckpt.fsync_ns").record(ns);
    }
    drop(f);
    if crash::fires(CrashPoint::CkptPostSync) {
        return Err(DurableError::Injected(CrashPoint::CkptPostSync));
    }
    fs::rename(&tmp, &stable)?;
    if crash::fires(CrashPoint::CkptPostRename) {
        // The rename reached the directory but the directory entry was
        // never fsynced — model the rename not surviving the crash.
        fs::rename(&stable, &tmp)?;
        return Err(DurableError::Injected(CrashPoint::CkptPostRename));
    }
    crate::atomic::sync_dir(dir);
    if crash::fires(CrashPoint::CkptPostDirSync) {
        return Err(DurableError::Injected(CrashPoint::CkptPostDirSync));
    }
    // Log creation is batched: every log file is written with its header
    // left *unsynced*, then one directory fsync covers the whole install
    // group — instead of a data sync per file. A crash inside the window
    // can lose any subset of the files or leave torn headers; recovery's
    // missing-log and bad-log paths rebuild them empty, which matches
    // their durable content exactly (a fresh log holds no records, and
    // its header becomes durable at its first record sync).
    let mut logs = Vec::with_capacity(n_logs);
    for idx in 0..n_logs {
        logs.push(LogWriter::create_unsynced(&log_path(dir, gen, idx), gen, idx as u64)?);
    }
    if crash::fires(CrashPoint::CkptLogUnsynced) {
        // Power cut after the group was created but before its dir-sync:
        // nothing about the new logs is guaranteed — model the worst
        // case, where every file vanishes.
        drop(logs);
        for idx in 0..n_logs {
            let _ = fs::remove_file(log_path(dir, gen, idx));
        }
        return Err(DurableError::Injected(CrashPoint::CkptLogUnsynced));
    }
    crate::atomic::sync_dir(dir);
    if crash::fires(CrashPoint::CkptRotate) {
        return Err(DurableError::Injected(CrashPoint::CkptRotate));
    }
    srb_obs::counter!("durable.ckpt.writes").inc();
    srb_obs::histogram!("durable.ckpt.bytes").record(payload.len() as u64);
    Ok(logs)
}

impl Store {
    /// Creates (or attaches to) a store in `dir`, installing a fresh
    /// generation rooted at `payload`. Any generations already present
    /// are superseded, never overwritten: the new generation is
    /// `max(existing) + 1`.
    pub fn create(
        dir: &Path,
        n_logs: usize,
        policy: SyncPolicy,
        group_ops: u32,
        payload: &[u8],
    ) -> Result<Store, DurableError> {
        assert!(n_logs >= 1, "a store needs at least one log");
        fs::create_dir_all(dir)?;
        let mut max_gen = 0u64;
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            match parse_name(&entry.file_name().to_string_lossy()) {
                StoreFile::Ckpt(g) | StoreFile::Log(g) => max_gen = max_gen.max(g),
                StoreFile::Other => {}
            }
        }
        let gen = max_gen + 1;
        let logs = install_generation(dir, gen, payload, n_logs)?;
        Ok(Store {
            dir: dir.to_path_buf(),
            gen,
            logs: logs.into_iter().map(Some).collect(),
            policy,
            group_ops: group_ops.max(1),
            ops_since_sync: 0,
            poisoned: false,
        })
    }

    /// The active generation.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Whether an earlier failure poisoned this store. A poisoned store
    /// rejects every operation — the process is considered dead and the
    /// only way forward is [`Store::recover`].
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Poisons the store explicitly — used when a lent log writer failed
    /// on a worker thread, where the failure cannot flow through
    /// [`Store::append`]'s guard.
    pub fn poison(&mut self) {
        self.poisoned = true;
    }

    fn guard<T>(&mut self, r: Result<T, DurableError>) -> Result<T, DurableError> {
        if r.is_err() {
            self.poisoned = true;
        }
        r
    }

    /// Lends log `idx`'s writer out (to a pipeline worker thread).
    /// Returns `None` when the store is poisoned or the log is already
    /// checked out. The commit protocol requires every log back before
    /// the next [`Store::commit`]/[`Store::checkpoint`].
    pub fn take_log(&mut self, idx: usize) -> Option<LogWriter> {
        if self.poisoned {
            return None;
        }
        self.logs[idx].take()
    }

    /// Returns a writer previously lent with [`Store::take_log`].
    pub fn put_log(&mut self, idx: usize, log: LogWriter) {
        debug_assert!(self.logs[idx].is_none(), "log {idx} returned while checked in");
        self.logs[idx] = Some(log);
    }

    /// Appends `payload` as one record to log `idx` (group-commit
    /// buffered; durable at the next commit boundary).
    pub fn append(&mut self, idx: usize, payload: &[u8]) -> Result<(), DurableError> {
        if self.poisoned {
            return Err(DurableError::Poisoned);
        }
        let r = self.logs[idx].as_mut().expect("log checked out during append").append(payload);
        self.guard(r)
    }

    /// Marks the end of one engine operation, syncing according to the
    /// store's [`SyncPolicy`].
    pub fn op_end(&mut self) -> Result<(), DurableError> {
        if self.poisoned {
            return Err(DurableError::Poisoned);
        }
        self.ops_since_sync += 1;
        let due = match self.policy {
            SyncPolicy::Never => false,
            SyncPolicy::Always => true,
            SyncPolicy::GroupCommit => self.ops_since_sync >= self.group_ops,
        };
        if due {
            self.commit()
        } else {
            Ok(())
        }
    }

    /// Forces every log to stable storage. Shard logs (indices `1..`)
    /// sync before the coordinator log (index `0`), so a durable
    /// coordinator record implies its shard partitions are durable too.
    pub fn commit(&mut self) -> Result<(), DurableError> {
        if self.poisoned {
            return Err(DurableError::Poisoned);
        }
        self.ops_since_sync = 0;
        for idx in (1..self.logs.len()).chain([0]) {
            let r = self.logs[idx].as_mut().expect("log checked out during commit").sync();
            self.guard(r)?;
        }
        Ok(())
    }

    /// Rotates the store to a new generation rooted at `payload`:
    /// commit, install the new checkpoint and logs copy-on-write, then
    /// prune generations older than the immediate fallback.
    pub fn checkpoint(&mut self, payload: &[u8]) -> Result<(), DurableError> {
        if self.poisoned {
            return Err(DurableError::Poisoned);
        }
        self.commit()?;
        let new_gen = self.gen + 1;
        let n_logs = self.logs.len();
        let r = install_generation(&self.dir, new_gen, payload, n_logs);
        let logs = self.guard(r)?;
        self.logs = logs.into_iter().map(Some).collect();
        self.gen = new_gen;
        // Keep generation `new_gen - 1` as the fallback root; everything
        // older is unreachable and can go.
        let r = self.prune_older_than(new_gen - 1);
        self.guard(r)
    }

    fn prune_older_than(&mut self, keep_floor: u64) -> Result<(), DurableError> {
        let mut victims = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            match parse_name(&entry.file_name().to_string_lossy()) {
                StoreFile::Ckpt(g) | StoreFile::Log(g) if g < keep_floor => {
                    victims.push(entry.path());
                }
                _ => {}
            }
        }
        victims.sort();
        for path in &victims {
            if crash::fires(CrashPoint::CkptPrune) {
                // Power cut mid-prune: the victims removed so far are
                // gone, the rest linger. Recovery must tolerate both.
                return Err(DurableError::Injected(CrashPoint::CkptPrune));
            }
            fs::remove_file(path)?;
        }
        Ok(())
    }

    /// Reopens the store from `dir`: loads the newest readable
    /// checkpoint (falling back a generation if the newest is damaged),
    /// collects every replayable record after it, physically truncates
    /// torn log tails, and recreates anything the crash interrupted.
    pub fn recover(
        dir: &Path,
        n_logs: usize,
        policy: SyncPolicy,
        group_ops: u32,
    ) -> Result<Recovered, DurableError> {
        assert!(n_logs >= 1, "a store needs at least one log");
        let mut stats = RecoveryStats::default();

        let mut ckpt_gens = Vec::new();
        let mut log_gens = Vec::new();
        let mut leftovers = Vec::new();
        for entry in fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            match parse_name(&name) {
                StoreFile::Ckpt(g) => ckpt_gens.push(g),
                StoreFile::Log(g) => log_gens.push(g),
                StoreFile::Other => {
                    if name.contains(".tmp") {
                        leftovers.push(entry.path());
                    }
                }
            }
        }
        // Torn checkpoint temps are dead weight from an interrupted
        // rotation; clear them so they cannot be mistaken for state.
        for path in leftovers {
            let _ = fs::remove_file(path);
        }
        ckpt_gens.sort_unstable();
        ckpt_gens.dedup();

        // Newest readable checkpoint wins; damaged ones fall back.
        let mut chosen = None;
        for &g in ckpt_gens.iter().rev() {
            match read_ckpt(&ckpt_path(dir, g), g) {
                Ok(payload) => {
                    chosen = Some((g, payload));
                    break;
                }
                Err(_) => {
                    stats.ckpt_fallbacks += 1;
                    srb_obs::counter!("durable.recover.ckpt_fallbacks").inc();
                }
            }
        }
        let (ckpt_gen, payload) = chosen.ok_or(DurableError::NoState)?;

        // The active generation is the newest the store ever reached —
        // a crash between directory fsync and log creation can leave a
        // checkpoint with no logs, and a crash before the checkpoint
        // rename leaves logs one generation ahead of nothing (impossible
        // by protocol order, but max() is cheap insurance).
        let active =
            log_gens.iter().copied().chain([ckpt_gen]).max().expect("chain contains ckpt_gen");

        let mut generations = Vec::new();
        let mut active_lens = vec![LOG_HEADER as u64; n_logs];
        let mut active_missing = vec![true; n_logs];
        for gen in ckpt_gen..=active {
            let mut logs = Vec::with_capacity(n_logs);
            for idx in 0..n_logs {
                let path = log_path(dir, gen, idx);
                let data = match fs::read(&path) {
                    Ok(d) => d,
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                        logs.push(Vec::new());
                        continue;
                    }
                    Err(e) => return Err(e.into()),
                };
                let start = match check_header(&data, gen, idx as u64) {
                    Ok(s) => s,
                    Err(_) => {
                        // Unreadable header: nothing in this file can be
                        // trusted. Drop it; the writer is recreated below.
                        stats.bad_logs += 1;
                        srb_obs::counter!("durable.recover.bad_logs").inc();
                        let _ = fs::remove_file(&path);
                        logs.push(Vec::new());
                        continue;
                    }
                };
                let frames = read_frames(&data[start..]);
                if !frames.clean {
                    stats.tail_truncations += 1;
                    srb_obs::counter!("durable.recover.tail_truncations").inc();
                }
                if gen == active {
                    active_lens[idx] = (start + frames.valid_len) as u64;
                    active_missing[idx] = false;
                }
                logs.push(frames.payloads.iter().map(|p| p.to_vec()).collect());
            }
            generations.push(GenerationFrames { gen, logs });
        }

        // Reopen writers on the active generation, truncating torn tails
        // physically and recreating files the crash never got to.
        let mut writers = Vec::with_capacity(n_logs);
        for idx in 0..n_logs {
            let path = log_path(dir, active, idx);
            if active_missing[idx] {
                writers.push(LogWriter::create(&path, active, idx as u64)?);
            } else {
                writers.push(LogWriter::open_append(&path, active_lens[idx])?);
            }
        }
        crate::atomic::sync_dir(dir);

        srb_obs::counter!("durable.recover.runs").inc();
        Ok(Recovered {
            store: Store {
                dir: dir.to_path_buf(),
                gen: active,
                logs: writers.into_iter().map(Some).collect(),
                policy,
                group_ops: group_ops.max(1),
                ops_since_sync: 0,
                poisoned: false,
            },
            ckpt_gen,
            payload,
            generations,
            stats,
        })
    }
}

/// Convenience for tests and harnesses: a readable listing of the store
/// directory (file name and length), sorted.
pub fn dir_listing(dir: &Path) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    if let Ok(rd) = fs::read_dir(dir) {
        for entry in rd.flatten() {
            let len = entry.metadata().map(|m| m.len()).unwrap_or(0);
            out.push((entry.file_name().to_string_lossy().into_owned(), len));
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "srb-store-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn all_records(r: &Recovered) -> Vec<Vec<u8>> {
        r.generations.iter().flat_map(|g| g.logs.iter().flatten().cloned()).collect()
    }

    #[test]
    fn create_append_commit_recover() {
        let dir = scratch();
        let mut s = Store::create(&dir, 1, SyncPolicy::GroupCommit, 4, b"root state").unwrap();
        s.append(0, b"op-1").unwrap();
        s.append(0, b"op-2").unwrap();
        s.commit().unwrap();
        drop(s);
        let r = Store::recover(&dir, 1, SyncPolicy::GroupCommit, 4).unwrap();
        assert_eq!(r.payload, b"root state");
        assert_eq!(all_records(&r), vec![b"op-1".to_vec(), b"op-2".to_vec()]);
        assert_eq!(r.stats, RecoveryStats::default());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_records_do_not_survive() {
        let dir = scratch();
        let mut s = Store::create(&dir, 1, SyncPolicy::Never, 1, b"root").unwrap();
        s.append(0, b"volatile").unwrap();
        s.op_end().unwrap();
        drop(s);
        let r = Store::recover(&dir, 1, SyncPolicy::Never, 1).unwrap();
        assert!(all_records(&r).is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_rotates_and_prunes_with_fallback() {
        let dir = scratch();
        let mut s = Store::create(&dir, 2, SyncPolicy::Always, 1, b"gen1").unwrap();
        s.append(0, b"a").unwrap();
        s.op_end().unwrap();
        s.checkpoint(b"gen2").unwrap();
        s.append(0, b"b").unwrap();
        s.op_end().unwrap();
        s.checkpoint(b"gen3").unwrap();
        s.append(1, b"c").unwrap();
        s.op_end().unwrap();
        drop(s);
        // Generation 1 was pruned; 2 is the fallback; 3 is active.
        let names: Vec<String> = dir_listing(&dir).into_iter().map(|(n, _)| n).collect();
        assert!(
            !names.iter().any(|n| n == "ckpt-1" || n.starts_with("log-1-")),
            "gen 1 pruned: {names:?}"
        );
        assert!(names.contains(&"ckpt-2".to_string()));
        assert!(names.contains(&"ckpt-3".to_string()));

        let r = Store::recover(&dir, 2, SyncPolicy::Always, 1).unwrap();
        assert_eq!(r.ckpt_gen, 3);
        assert_eq!(r.payload, b"gen3");
        assert_eq!(all_records(&r), vec![b"c".to_vec()]);

        // Damage the newest checkpoint: recovery falls back to gen 2 and
        // replays both generations of logs.
        let mut bytes = fs::read(ckpt_path(&dir, 3)).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(ckpt_path(&dir, 3), bytes).unwrap();
        let r = Store::recover(&dir, 2, SyncPolicy::Always, 1).unwrap();
        assert_eq!(r.ckpt_gen, 2);
        assert_eq!(r.payload, b"gen2");
        assert_eq!(all_records(&r), vec![b"b".to_vec(), b"c".to_vec()]);
        assert_eq!(r.stats.ckpt_fallbacks, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_counted() {
        let dir = scratch();
        let mut s = Store::create(&dir, 1, SyncPolicy::Always, 1, b"root").unwrap();
        s.append(0, b"good").unwrap();
        s.op_end().unwrap();
        drop(s);
        // Simulate a torn append: garbage after the valid frame.
        let path = log_path(&dir, 1, 0);
        let mut data = fs::read(&path).unwrap();
        let valid = data.len();
        data.extend_from_slice(&[0x55; 7]);
        fs::write(&path, data).unwrap();
        let r = Store::recover(&dir, 1, SyncPolicy::Always, 1).unwrap();
        assert_eq!(all_records(&r), vec![b"good".to_vec()]);
        assert_eq!(r.stats.tail_truncations, 1);
        assert_eq!(fs::metadata(&path).unwrap().len() as usize, valid, "tail physically cut");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_ckpt_crash_point_recovers_to_a_consistent_root() {
        for point in [
            CrashPoint::CkptWrite,
            CrashPoint::CkptPreSync,
            CrashPoint::CkptPostSync,
            CrashPoint::CkptPostRename,
            CrashPoint::CkptPostDirSync,
            CrashPoint::CkptLogUnsynced,
            CrashPoint::CkptRotate,
            CrashPoint::CkptPrune,
        ] {
            let dir = scratch();
            let mut s = Store::create(&dir, 1, SyncPolicy::Always, 1, b"gen1").unwrap();
            s.append(0, b"a").unwrap();
            s.op_end().unwrap();
            // CkptPrune only fires once generation 1 is prunable, so run
            // one full rotation first for that point.
            if point == CrashPoint::CkptPrune {
                s.checkpoint(b"gen2").unwrap();
                s.append(0, b"b").unwrap();
                s.op_end().unwrap();
            }
            crash::arm(point, 0);
            let target = if point == CrashPoint::CkptPrune { b"gen3".as_slice() } else { b"gen2" };
            let err = s.checkpoint(target).unwrap_err();
            crash::disarm();
            assert!(matches!(err, DurableError::Injected(p) if p == point));
            assert!(matches!(s.append(0, b"x"), Err(DurableError::Poisoned)));
            drop(s);

            let r = Store::recover(&dir, 1, SyncPolicy::Always, 1).unwrap();
            // Whatever the boundary, the recovered root plus its records
            // reconstruct the full history: either the new checkpoint
            // took (no records to replay) or the old one plus its log.
            let records = all_records(&r);
            match (r.payload.as_slice(), point) {
                (b"gen1", _) => assert_eq!(records, vec![b"a".to_vec()]),
                (b"gen2", CrashPoint::CkptPrune) => assert_eq!(records, vec![b"b".to_vec()]),
                (b"gen2", _) => assert!(records.is_empty()),
                (b"gen3", _) => assert!(records.is_empty()),
                other => panic!("unexpected root {other:?} at {point:?}"),
            }
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn lent_log_appends_survive_return_and_commit() {
        let dir = scratch();
        let mut s = Store::create(&dir, 2, SyncPolicy::Always, 1, b"root").unwrap();
        let mut log = s.take_log(1).expect("log available");
        assert!(s.take_log(1).is_none(), "double checkout refused");
        log.append(b"from-worker").unwrap();
        s.put_log(1, log);
        s.commit().unwrap();
        drop(s);
        let r = Store::recover(&dir, 2, SyncPolicy::Always, 1).unwrap();
        assert_eq!(all_records(&r), vec![b"from-worker".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn poisoned_store_refuses_log_checkout() {
        let dir = scratch();
        let mut s = Store::create(&dir, 1, SyncPolicy::Always, 1, b"root").unwrap();
        s.poison();
        assert!(s.take_log(0).is_none());
        assert!(matches!(s.append(0, b"x"), Err(DurableError::Poisoned)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn create_supersedes_existing_generations() {
        let dir = scratch();
        let s = Store::create(&dir, 1, SyncPolicy::Never, 1, b"first").unwrap();
        assert_eq!(s.generation(), 1);
        drop(s);
        let s = Store::create(&dir, 1, SyncPolicy::Never, 1, b"second").unwrap();
        assert_eq!(s.generation(), 2);
        drop(s);
        let r = Store::recover(&dir, 1, SyncPolicy::Never, 1).unwrap();
        assert_eq!(r.payload, b"second");
        fs::remove_dir_all(&dir).unwrap();
    }
}
