//! Crash-safe whole-file writes: temp sibling + fsync + atomic rename +
//! best-effort directory fsync.
//!
//! Used by the checkpoint writer and by every JSON artifact writer in
//! the workspace (`BENCH_*.json`, `OBS_snapshot.json`, timelines), so a
//! crash mid-write can never leave a half-written file under the stable
//! name — readers see either the old contents or the new ones.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::Path;
use std::process;

/// Fsyncs a directory so a rename inside it becomes durable. Best
/// effort: some filesystems refuse to open directories for writing, and
/// the rename itself is still atomic without it.
pub fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

/// Writes `bytes` to `path` atomically: the data lands in a pid-suffixed
/// sibling temp file, is fsynced, then renamed over `path`. On any error
/// the temp file is removed and `path` is untouched.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = tmp_sibling(path);
    let result = (|| {
        let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
        drop(f);
        fs::rename(&tmp, path)
    })();
    match result {
        Ok(()) => {
            if let Some(dir) = path.parent() {
                sync_dir(dir);
            }
            Ok(())
        }
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// A temp-file name beside `path`, unique per process.
pub fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(format!(".tmp.{}", process::id()));
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir() -> std::path::PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "srb-atomic-{}-{}",
            process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_land_and_replace() {
        let dir = scratch_dir();
        let p = dir.join("out.json");
        atomic_write(&p, b"first").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"first");
        atomic_write(&p, b"second version").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"second version");
        // No temp litter left behind.
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failed_write_leaves_target_untouched() {
        let dir = scratch_dir();
        let p = dir.join("out.json");
        atomic_write(&p, b"stable").unwrap();
        // A directory where the temp file should go forces the open to fail.
        let missing = dir.join("nope").join("out.json");
        assert!(atomic_write(&missing, b"x").is_err());
        assert_eq!(fs::read(&p).unwrap(), b"stable");
        fs::remove_dir_all(&dir).unwrap();
    }
}
