//! Length-prefixed, CRC-framed records.
//!
//! A frame is `len: u32 LE | crc: u32 LE | payload[len]` where `crc`
//! is the CRC-32 of the payload alone. [`read_frames`] scans a byte
//! buffer and returns every valid frame up to the first damage — a torn
//! write or truncated tail stops the scan gracefully rather than
//! erroring, because trailing garbage after the durable prefix is the
//! *expected* aftermath of a crash.

use crate::crc32::crc32;

/// Frames larger than this are rejected as corrupt length prefixes
/// rather than honored (a torn length field can read as gigabytes).
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Bytes of framing overhead per record.
pub const FRAME_HEADER: usize = 8;

/// Appends one frame wrapping `payload` to `out`.
pub fn push_frame(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_FRAME_LEN as usize);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// The result of scanning a buffer for frames.
pub struct Frames<'a> {
    /// Payloads of every frame that validated, in order.
    pub payloads: Vec<&'a [u8]>,
    /// Byte length of the valid prefix (where a tail truncation should
    /// cut the file).
    pub valid_len: usize,
    /// `true` when the whole buffer was consumed by valid frames —
    /// `false` means a torn or corrupt tail follows `valid_len`.
    pub clean: bool,
}

/// Scans `data` for consecutive valid frames, stopping at the first
/// frame whose header is short, whose declared length overruns the
/// buffer or [`MAX_FRAME_LEN`], or whose CRC does not match. Never
/// panics, whatever the bytes.
pub fn read_frames(data: &[u8]) -> Frames<'_> {
    let mut payloads = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &data[pos..];
        if rest.is_empty() {
            return Frames { payloads, valid_len: pos, clean: true };
        }
        if rest.len() < FRAME_HEADER {
            return Frames { payloads, valid_len: pos, clean: false };
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_FRAME_LEN || rest.len() - FRAME_HEADER < len as usize {
            return Frames { payloads, valid_len: pos, clean: false };
        }
        let payload = &rest[FRAME_HEADER..FRAME_HEADER + len as usize];
        if crc32(payload) != crc {
            return Frames { payloads, valid_len: pos, clean: false };
        }
        payloads.push(payload);
        pos += FRAME_HEADER + len as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_multiple_frames() {
        let mut buf = Vec::new();
        push_frame(&mut buf, b"alpha");
        push_frame(&mut buf, b"");
        push_frame(&mut buf, &[0xFFu8; 300]);
        let f = read_frames(&buf);
        assert!(f.clean);
        assert_eq!(f.valid_len, buf.len());
        assert_eq!(f.payloads, vec![b"alpha" as &[u8], b"", &[0xFFu8; 300]]);
    }

    #[test]
    fn torn_tail_stops_at_last_valid_frame() {
        let mut buf = Vec::new();
        push_frame(&mut buf, b"keep me");
        let cut = buf.len();
        push_frame(&mut buf, b"torn away");
        for end in cut..buf.len() {
            let f = read_frames(&buf[..end]);
            assert_eq!(f.payloads.len(), 1, "truncated at byte {end}");
            assert_eq!(f.valid_len, cut);
            assert!(!f.clean || end == cut);
        }
    }

    #[test]
    fn corrupt_crc_invalidates_frame_and_tail() {
        let mut buf = Vec::new();
        push_frame(&mut buf, b"first");
        let second_start = buf.len();
        push_frame(&mut buf, b"second");
        push_frame(&mut buf, b"third");
        buf[second_start + FRAME_HEADER] ^= 1;
        let f = read_frames(&buf);
        assert_eq!(f.payloads, vec![b"first" as &[u8]]);
        assert_eq!(f.valid_len, second_start);
        assert!(!f.clean);
    }

    #[test]
    fn hostile_length_prefix_is_bounded() {
        let mut buf = u32::MAX.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 64]);
        let f = read_frames(&buf);
        assert!(f.payloads.is_empty());
        assert_eq!(f.valid_len, 0);
        assert!(!f.clean);
    }
}
