//! Append-only operation log with group commit.
//!
//! A log file is a 24-byte header (`magic | generation | index`)
//! followed by CRC-framed records (see [`crate::frame`]). The writer
//! keeps two watermarks: `durable` (bytes known fsynced) and `written`
//! (bytes handed to the kernel). Appends accumulate in an in-memory
//! group-commit buffer; [`LogWriter::sync`] flushes the buffer and
//! fsyncs, advancing `durable`.
//!
//! Each watermark transition is a crash-point boundary: an armed
//! [`CrashPoint`](crate::CrashPoint) makes this module emulate the
//! corresponding power cut — a torn half-write, an unflushed page cache
//! (file truncated back to `durable`), or a crash just after the fsync.

use crate::crash::{self, CrashPoint};
use crate::error::DurableError;
use crate::frame;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every log file.
pub const LOG_MAGIC: &[u8; 8] = b"SRBLOG01";

/// Header length: magic + generation (u64) + log index (u64).
pub const LOG_HEADER: usize = 24;

/// Builds the 24-byte header for generation `gen`, log `idx`.
pub fn log_header(gen: u64, idx: u64) -> [u8; LOG_HEADER] {
    let mut h = [0u8; LOG_HEADER];
    h[..8].copy_from_slice(LOG_MAGIC);
    h[8..16].copy_from_slice(&gen.to_le_bytes());
    h[16..24].copy_from_slice(&idx.to_le_bytes());
    h
}

/// Validates a log file's header against the expected generation and
/// index, returning the byte offset where records start.
pub fn check_header(data: &[u8], gen: u64, idx: u64) -> Result<usize, DurableError> {
    if data.len() < LOG_HEADER {
        return Err(DurableError::ShortRecord);
    }
    if &data[..8] != LOG_MAGIC {
        return Err(DurableError::BadMagic);
    }
    let file_gen = u64::from_le_bytes(data[8..16].try_into().unwrap());
    let file_idx = u64::from_le_bytes(data[16..24].try_into().unwrap());
    if file_gen != gen {
        return Err(DurableError::GenerationMismatch { expected: gen, found: file_gen });
    }
    if file_idx != idx {
        return Err(DurableError::GenerationMismatch { expected: idx, found: file_idx });
    }
    Ok(LOG_HEADER)
}

/// An open append-only log with an explicit durable prefix.
pub struct LogWriter {
    file: File,
    path: PathBuf,
    /// Frames appended but not yet handed to the kernel.
    pending: Vec<u8>,
    /// Bytes known durable (header included).
    durable: u64,
    /// Bytes written to the file (>= durable until the next sync).
    written: u64,
}

impl LogWriter {
    /// Creates a fresh log at `path` with a synced header. The file must
    /// not meaningfully exist (any previous contents are truncated).
    pub fn create(path: &Path, gen: u64, idx: u64) -> Result<LogWriter, DurableError> {
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        file.write_all(&log_header(gen, idx))?;
        file.sync_data()?;
        Ok(LogWriter {
            file,
            path: path.to_path_buf(),
            pending: Vec::new(),
            durable: LOG_HEADER as u64,
            written: LOG_HEADER as u64,
        })
    }

    /// Creates a fresh log at `path` whose header is written but **not**
    /// fsynced — the checkpoint-install path batches the whole log group
    /// behind a single directory fsync instead of one data sync per
    /// file. The header becomes durable at the log's first record sync
    /// (`sync_data` flushes the whole file); until then a crash may
    /// leave the file missing or torn, which recovery repairs by
    /// recreating it empty — exactly its durable content.
    pub fn create_unsynced(path: &Path, gen: u64, idx: u64) -> Result<LogWriter, DurableError> {
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        file.write_all(&log_header(gen, idx))?;
        Ok(LogWriter {
            file,
            path: path.to_path_buf(),
            pending: Vec::new(),
            durable: LOG_HEADER as u64,
            written: LOG_HEADER as u64,
        })
    }

    /// Reopens an existing log for appending after recovery, treating the
    /// current `len` bytes (already validated and possibly truncated by the
    /// recovery scan) as durable.
    pub fn open_append(path: &Path, len: u64) -> Result<LogWriter, DurableError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(len)?;
        file.sync_data()?;
        file.seek(SeekFrom::Start(len))?;
        Ok(LogWriter {
            file,
            path: path.to_path_buf(),
            pending: Vec::new(),
            durable: len,
            written: len,
        })
    }

    /// The path this log lives at.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes currently buffered awaiting the next [`sync`](Self::sync).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Frames `payload` into the group-commit buffer. Nothing reaches the
    /// kernel until [`sync`](Self::sync).
    pub fn append(&mut self, payload: &[u8]) -> Result<(), DurableError> {
        if crash::fires(CrashPoint::LogAppend) {
            return Err(DurableError::Injected(CrashPoint::LogAppend));
        }
        frame::push_frame(&mut self.pending, payload);
        srb_obs::counter!("durable.log.appends").inc();
        srb_obs::histogram!("durable.log.record_bytes").record(payload.len() as u64);
        Ok(())
    }

    /// Flushes the group-commit buffer and fsyncs, advancing the durable
    /// prefix. A no-op when nothing is pending and nothing unflushed.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        if self.pending.is_empty() && self.written == self.durable {
            return Ok(());
        }
        if crash::fires(CrashPoint::LogWrite) {
            // Power cut mid-write: a torn prefix of the pending bytes
            // lands in the file and nothing is fsynced.
            let torn = self.pending.len() / 2;
            self.file.write_all(&self.pending[..torn])?;
            self.file.sync_data()?;
            return Err(DurableError::Injected(CrashPoint::LogWrite));
        }
        self.file.write_all(&self.pending)?;
        self.written += self.pending.len() as u64;
        self.pending.clear();
        if crash::fires(CrashPoint::LogPreSync) {
            // Power cut before fsync: the page cache is lost, so the file
            // rolls back to the durable prefix.
            self.file.set_len(self.durable)?;
            self.file.sync_data()?;
            return Err(DurableError::Injected(CrashPoint::LogPreSync));
        }
        let sw = srb_obs::Stopwatch::start();
        self.file.sync_data()?;
        if let Some(ns) = sw.elapsed_ns() {
            srb_obs::histogram!("durable.log.fsync_ns").record(ns);
        }
        srb_obs::counter!("durable.log.syncs").inc();
        self.durable = self.written;
        if crash::fires(CrashPoint::LogPostSync) {
            return Err(DurableError::Injected(CrashPoint::LogPostSync));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::read_frames;
    use std::fs;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch() -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "srb-log-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn records_of(path: &Path, gen: u64, idx: u64) -> Vec<Vec<u8>> {
        let data = fs::read(path).unwrap();
        let start = check_header(&data, gen, idx).unwrap();
        read_frames(&data[start..]).payloads.iter().map(|p| p.to_vec()).collect()
    }

    #[test]
    fn append_sync_reopen_append() {
        let dir = scratch();
        let p = dir.join("log-1-0");
        let mut w = LogWriter::create(&p, 1, 0).unwrap();
        w.append(b"one").unwrap();
        w.append(b"two").unwrap();
        assert!(records_of(&p, 1, 0).is_empty(), "group commit buffers in memory");
        w.sync().unwrap();
        assert_eq!(records_of(&p, 1, 0), vec![b"one".to_vec(), b"two".to_vec()]);
        let durable = fs::metadata(&p).unwrap().len();
        drop(w);
        let mut w = LogWriter::open_append(&p, durable).unwrap();
        w.append(b"three").unwrap();
        w.sync().unwrap();
        assert_eq!(records_of(&p, 1, 0), vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_validation_catches_mismatches() {
        let dir = scratch();
        let p = dir.join("log-7-2");
        LogWriter::create(&p, 7, 2).unwrap();
        let data = fs::read(&p).unwrap();
        assert_eq!(check_header(&data, 7, 2).unwrap(), LOG_HEADER);
        assert!(matches!(
            check_header(&data, 8, 2),
            Err(DurableError::GenerationMismatch { expected: 8, found: 7 })
        ));
        assert!(matches!(check_header(&data, 7, 3), Err(DurableError::GenerationMismatch { .. })));
        assert!(matches!(
            check_header(b"NOTMAGIC00000000ffffffff", 7, 2),
            Err(DurableError::BadMagic)
        ));
        assert!(matches!(check_header(b"short", 7, 2), Err(DurableError::ShortRecord)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pre_sync_crash_rolls_back_to_durable_prefix() {
        let dir = scratch();
        let p = dir.join("log-1-0");
        let mut w = LogWriter::create(&p, 1, 0).unwrap();
        w.append(b"durable record").unwrap();
        w.sync().unwrap();
        w.append(b"lost record").unwrap();
        crash::arm(CrashPoint::LogPreSync, 0);
        assert!(matches!(w.sync(), Err(DurableError::Injected(CrashPoint::LogPreSync))));
        crash::disarm();
        assert_eq!(records_of(&p, 1, 0), vec![b"durable record".to_vec()]);
        let data = fs::read(&p).unwrap();
        let f = read_frames(&data[LOG_HEADER..]);
        assert!(f.clean, "rollback leaves no torn tail");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_write_crash_leaves_torn_recoverable_tail() {
        let dir = scratch();
        let p = dir.join("log-1-0");
        let mut w = LogWriter::create(&p, 1, 0).unwrap();
        w.append(b"safe").unwrap();
        w.sync().unwrap();
        let durable = fs::metadata(&p).unwrap().len();
        w.append(b"this record gets torn in half by the crash").unwrap();
        crash::arm(CrashPoint::LogWrite, 0);
        assert!(matches!(w.sync(), Err(DurableError::Injected(CrashPoint::LogWrite))));
        crash::disarm();
        let data = fs::read(&p).unwrap();
        assert!(data.len() as u64 > durable, "a torn prefix landed");
        let f = read_frames(&data[LOG_HEADER..]);
        assert_eq!(f.payloads, vec![b"safe" as &[u8]]);
        assert!(!f.clean);
        assert_eq!(f.valid_len as u64, durable - LOG_HEADER as u64);
        fs::remove_dir_all(&dir).unwrap();
    }
}
