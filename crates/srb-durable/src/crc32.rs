//! Hand-rolled IEEE CRC-32 (polynomial `0xEDB88320`, the zlib/Ethernet
//! variant). The workspace vendors its dependencies, so the checksum is
//! implemented here from the reference table construction.

/// The 256-entry lookup table, built once at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 of `data` (init `!0`, final xor `!0` — the standard IEEE form).
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        // The canonical check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flips_always_detected() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = crc32(data);
        let mut buf = data.to_vec();
        for i in 0..buf.len() * 8 {
            buf[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&buf), base, "bit {i} undetected");
            buf[i / 8] ^= 1 << (i % 8);
        }
    }
}
