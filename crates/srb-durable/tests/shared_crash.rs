//! The shared (cross-thread) crash-arming plan, exercised in its own
//! test binary: the plan is process-global, so it must not run
//! concurrently with unrelated durability tests that cross the same
//! boundaries (they would steal the countdown).

use srb_durable::crash::{self, CrashPoint};
use srb_durable::log::LogWriter;
use srb_durable::DurableError;
use std::sync::Mutex;

/// Tests in this file share the one process-global plan; serialize them.
static PLAN: Mutex<()> = Mutex::new(());

#[test]
fn shared_plan_fires_on_whichever_thread_reaches_the_boundary() {
    let _guard = PLAN.lock().unwrap();
    crash::arm_shared(CrashPoint::LogAppend, 1);
    assert!(!crash::fires(CrashPoint::LogWrite), "other points never fire");
    assert!(!crash::fires(CrashPoint::LogAppend), "countdown: first visit survives");
    let hit = std::thread::spawn(|| crash::fires(CrashPoint::LogAppend)).join().unwrap();
    assert!(hit, "second visit fires, even on another thread");
    assert!(crash::fired_shared());
    assert!(!crash::fires(CrashPoint::LogAppend), "one-shot");
    crash::disarm();
    assert!(!crash::fires(CrashPoint::LogAppend));
}

#[test]
fn shared_plan_reaches_a_log_append_on_a_worker_thread() {
    let _guard = PLAN.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("srb-shared-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("log-1-0");
    let mut log = LogWriter::create(&path, 1, 0).unwrap();

    crash::arm_shared(CrashPoint::LogAppend, 0);
    let err = std::thread::spawn(move || log.append(b"worker append").unwrap_err()).join().unwrap();
    crash::disarm();
    assert!(matches!(err, DurableError::Injected(CrashPoint::LogAppend)));
    assert!(crash::fired_shared());
    std::fs::remove_dir_all(&dir).unwrap();
}
