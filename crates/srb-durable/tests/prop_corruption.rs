//! Property tests: the frame decoder and checkpoint reader are total.
//!
//! Random record sequences are framed, then mangled — bit flips,
//! truncation, duplicated tails, injected garbage — and the decoder must
//! never panic and never hand back a frame whose CRC does not check out.
//! The valid prefix it reports must also be exactly the frames written
//! before the first byte of damage.

use proptest::prelude::*;
use srb_durable::crc32::crc32;
use srb_durable::frame::{push_frame, read_frames, FRAME_HEADER};

fn encode(records: &[Vec<u8>]) -> Vec<u8> {
    let mut buf = Vec::new();
    for r in records {
        push_frame(&mut buf, r);
    }
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Decoding arbitrary bytes never panics and only yields CRC-valid
    /// frames that round-trip byte-for-byte.
    #[test]
    fn arbitrary_bytes_decode_totally(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let f = read_frames(&data);
        prop_assert!(f.valid_len <= data.len());
        let mut pos = 0usize;
        for p in &f.payloads {
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap());
            let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
            prop_assert_eq!(len as usize, p.len());
            prop_assert_eq!(crc, crc32(p));
            pos += FRAME_HEADER + p.len();
        }
        prop_assert_eq!(pos, f.valid_len);
        prop_assert_eq!(f.clean, f.valid_len == data.len());
    }

    /// Clean encodings decode to exactly what was written.
    #[test]
    fn clean_round_trip(records in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..64), 0..32)) {
        let buf = encode(&records);
        let f = read_frames(&buf);
        prop_assert!(f.clean);
        prop_assert_eq!(f.valid_len, buf.len());
        prop_assert_eq!(f.payloads.len(), records.len());
        for (got, want) in f.payloads.iter().zip(&records) {
            prop_assert_eq!(*got, want.as_slice());
        }
    }

    /// Truncating anywhere yields exactly the frames wholly before the cut.
    #[test]
    fn truncation_keeps_the_whole_prefix(
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..48), 1..16),
        cut_frac in 0.0f64..1.0) {
        let buf = encode(&records);
        let cut = (buf.len() as f64 * cut_frac) as usize;
        let f = read_frames(&buf[..cut]);
        // Count how many frames end at or before the cut.
        let mut end = 0usize;
        let mut whole = 0usize;
        for r in &records {
            end += FRAME_HEADER + r.len();
            if end <= cut {
                whole += 1;
            } else {
                break;
            }
        }
        prop_assert_eq!(f.payloads.len(), whole);
        for (got, want) in f.payloads.iter().zip(&records) {
            prop_assert_eq!(*got, want.as_slice());
        }
    }

    /// A single bit flip invalidates the frame it lands in (and the tail
    /// after it), but every frame before the flip survives untouched.
    #[test]
    fn bit_flip_never_yields_a_bad_frame(
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..48), 1..16),
        flip_frac in 0.0f64..1.0) {
        let mut buf = encode(&records);
        let bit = ((buf.len() * 8 - 1) as f64 * flip_frac) as usize;
        buf[bit / 8] ^= 1 << (bit % 8);
        let f = read_frames(&buf);
        // Frames entirely before the flipped byte must survive; the frame
        // containing the flip must not surface with mismatched bytes.
        let mut start = 0usize;
        for (i, r) in records.iter().enumerate() {
            let end = start + FRAME_HEADER + r.len();
            if end <= bit / 8 {
                prop_assert!(f.payloads.len() > i, "frame before damage lost");
                prop_assert_eq!(f.payloads[i], r.as_slice());
            }
            start = end;
        }
        for p in &f.payloads {
            prop_assert_eq!(crc32(p), {
                // Re-derive the stored CRC from the buffer to confirm the
                // decoder checked it.
                let off = p.as_ptr() as usize - buf.as_ptr() as usize;
                u32::from_le_bytes(buf[off - 4..off].try_into().unwrap())
            });
        }
    }

    /// Appending a duplicate of the tail (a double-write artifact) still
    /// decodes totally and keeps the original frames.
    #[test]
    fn duplicated_tail_decodes_totally(
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..48), 1..16),
        dup_frac in 0.0f64..1.0) {
        let buf = encode(&records);
        let from = (buf.len() as f64 * dup_frac) as usize;
        let mut mangled = buf.clone();
        mangled.extend_from_slice(&buf[from..]);
        let f = read_frames(&mangled);
        prop_assert!(f.payloads.len() >= records.len());
        for (got, want) in f.payloads.iter().zip(&records) {
            prop_assert_eq!(*got, want.as_slice());
        }
    }
}
