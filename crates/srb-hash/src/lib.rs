//! # srb-hash
//!
//! The workspace's shared FxHash-style hasher for small integer keys
//! (object ids, query ids, R\*-tree entry ids).
//!
//! The standard library's SipHash is collision-resistant but slow for small
//! integer keys; id-keyed lookups happen on every location update, so the
//! hot maps use the classic Fx multiply-rotate scheme (the rustc hasher)
//! implemented locally to avoid an external dependency. The hasher started
//! life inside `srb-index` (for the `EntryId -> NodeId` leaf map) and was
//! promoted here so `srb-core`'s object/query state plane and batch
//! scratch buffers share the same scheme.
//!
//! Determinism note: [`FxHasher`] is fixed-seed, so map *layout* is
//! reproducible across runs — but none of the framework's result-affecting
//! paths iterate these maps in bucket order, so swapping SipHash for Fx
//! never changes observable behavior.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style 64-bit hasher.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = (self.hash.rotate_left(5) ^ n).wrapping_mul(SEED);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// A `HashMap` keyed by small integers using [`FxHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` of small integers using [`FxHasher`].
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trip() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i, (i * 2) as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&((i * 2) as u32)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn set_round_trip() {
        let mut s: FastSet<u32> = FastSet::default();
        for i in 0..100u32 {
            s.insert(i * 3);
        }
        assert!(s.contains(&99));
        assert!(!s.contains(&100));
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn hasher_spreads_sequential_keys() {
        // Sequential keys must not all collide to the same bucket pattern.
        let hashes: Vec<u64> = (0..64u64)
            .map(|k| {
                let mut h = FxHasher::default();
                h.write_u64(k);
                h.finish()
            })
            .collect();
        let distinct: std::collections::HashSet<_> = hashes.iter().collect();
        assert_eq!(distinct.len(), 64);
    }

    #[test]
    fn clear_retains_capacity() {
        // The scratch-buffer reuse pattern relies on `clear()` keeping the
        // allocation, so refills up to the old length never reallocate.
        let mut m: FastMap<u32, u32> = FastMap::default();
        for i in 0..256u32 {
            m.insert(i, i);
        }
        let cap = m.capacity();
        m.clear();
        assert!(m.capacity() >= cap);
    }
}
