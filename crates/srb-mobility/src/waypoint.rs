//! Piecewise-linear trajectories and the random waypoint mobility model
//! (paper §7.1; Broch et al., MobiCom 1998).
//!
//! An object picks a uniform random destination, moves toward it at a speed
//! drawn from `U[0, 2·v̄]`, and re-plans upon arrival or when a movement
//! period drawn from `U[0, 2·t̄v]` expires. Because motion is piecewise
//! linear, the first time a trajectory leaves an axis-aligned rectangle (a
//! safe region) has a closed form — the simulator schedules client updates
//! as *events* instead of polling.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use srb_geom::{Point, Rect};
use std::collections::VecDeque;

/// One linear motion segment: position is `start + vel·(t − t0)` for
/// `t ∈ [t0, t1]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Segment start time.
    pub t0: f64,
    /// Segment end time (`>= t0`).
    pub t1: f64,
    /// Position at `t0`.
    pub start: Point,
    /// Velocity vector (distance per time unit).
    pub vel: Point,
}

impl Segment {
    /// Position at time `t` (clamped to the segment's time span).
    pub fn position(&self, t: f64) -> Point {
        let dt = (t - self.t0).clamp(0.0, self.t1 - self.t0);
        self.start + self.vel * dt
    }

    /// The first time in `[max(t0, from), t1]` at which the trajectory
    /// leaves the *closed* rectangle, assuming it is inside at `from`.
    /// Returns `None` when the segment stays inside through `t1`.
    pub fn exit_time(&self, rect: &Rect, from: f64) -> Option<f64> {
        let from = from.max(self.t0);
        if from > self.t1 {
            return None;
        }
        let p = self.position(from);
        if !rect.contains_point(p) {
            return Some(from);
        }
        let mut exit = f64::INFINITY;
        for (x0, v, lo, hi) in [
            (p.x, self.vel.x, rect.min().x, rect.max().x),
            (p.y, self.vel.y, rect.min().y, rect.max().y),
        ] {
            if v > 0.0 {
                exit = exit.min(from + (hi - x0) / v);
            } else if v < 0.0 {
                exit = exit.min(from + (lo - x0) / v);
            }
        }
        if exit <= self.t1 {
            Some(exit.max(from))
        } else {
            None
        }
    }
}

/// Configuration of the random waypoint model (Table 7.1 defaults).
#[derive(Clone, Copy, Debug)]
pub struct MobilityConfig {
    /// The space objects move in.
    pub space: Rect,
    /// Mean speed `v̄`; actual speed is drawn from `U[0, 2·v̄]`.
    pub mean_speed: f64,
    /// Mean constant movement period `t̄v`; drawn from `U[0, 2·t̄v]`.
    pub mean_period: f64,
}

impl Default for MobilityConfig {
    fn default() -> Self {
        MobilityConfig { space: Rect::UNIT, mean_speed: 0.01, mean_period: 0.005 }
    }
}

impl MobilityConfig {
    /// The maximum possible speed (`2·v̄`) — the honest `V` for the
    /// reachability-circle enhancement (§6.1).
    pub fn max_speed(&self) -> f64 {
        2.0 * self.mean_speed
    }
}

enum Gen {
    Waypoint {
        rng: Box<ChaCha8Rng>,
        cfg: MobilityConfig,
        /// End state of the last generated segment.
        pos: Point,
        t: f64,
    },
    /// A fixed script; after the last segment the object stays put.
    Script { segments: Vec<Segment>, next: usize },
}

/// A lazily generated, deterministic trajectory. Segments are produced on
/// demand and retired with [`forget_before`](Trajectory::forget_before), so
/// memory stays bounded even for very long simulations with tiny movement
/// periods.
pub struct Trajectory {
    segs: VecDeque<Segment>,
    gen: Gen,
    /// Lookup hint: index of the segment that answered the last query.
    cursor: usize,
}

impl Trajectory {
    /// A random-waypoint trajectory seeded deterministically from
    /// `(seed, id)`, starting at a uniform random point at time `t0`.
    pub fn random_waypoint(seed: u64, id: u64, cfg: MobilityConfig, t0: f64) -> Trajectory {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let start = Point::new(
            cfg.space.min().x + rng.gen::<f64>() * cfg.space.width(),
            cfg.space.min().y + rng.gen::<f64>() * cfg.space.height(),
        );
        Trajectory {
            segs: VecDeque::new(),
            gen: Gen::Waypoint { rng: Box::new(rng), cfg, pos: start, t: t0 },
            cursor: 0,
        }
    }

    /// A trajectory following a fixed script of contiguous segments. After
    /// the last segment the object remains at its final position.
    pub fn scripted(segments: Vec<Segment>) -> Trajectory {
        assert!(!segments.is_empty(), "scripted trajectory needs segments");
        for w in segments.windows(2) {
            debug_assert!((w[0].t1 - w[1].t0).abs() < 1e-9, "script segments must be contiguous");
        }
        Trajectory { segs: VecDeque::new(), gen: Gen::Script { segments, next: 0 }, cursor: 0 }
    }

    /// A trajectory that never moves (useful for tests).
    pub fn stationary(p: Point, t0: f64) -> Trajectory {
        Trajectory::scripted(vec![Segment { t0, t1: t0, start: p, vel: Point::ORIGIN }])
    }

    fn generate_next(&mut self) -> Segment {
        match &mut self.gen {
            Gen::Waypoint { rng, cfg, pos, t } => {
                let dest = Point::new(
                    cfg.space.min().x + rng.gen::<f64>() * cfg.space.width(),
                    cfg.space.min().y + rng.gen::<f64>() * cfg.space.height(),
                );
                let speed = rng.gen::<f64>() * 2.0 * cfg.mean_speed;
                let period = rng.gen::<f64>() * 2.0 * cfg.mean_period;
                let to_dest = dest - *pos;
                let dist = to_dest.norm();
                let travel_time =
                    if speed > 0.0 && dist > 0.0 { dist / speed } else { f64::INFINITY };
                let dur = period.min(travel_time).max(1e-9);
                let vel = if dist > 0.0 { to_dest * (speed / dist) } else { Point::ORIGIN };
                let seg = Segment { t0: *t, t1: *t + dur, start: *pos, vel };
                *pos = seg.position(seg.t1);
                *t = seg.t1;
                seg
            }
            Gen::Script { segments, next } => {
                if *next < segments.len() {
                    let seg = segments[*next];
                    *next += 1;
                    seg
                } else {
                    // Stay put forever (in long exponentially growing spans
                    // so `ensure_time` terminates quickly).
                    let last = self.segs.back().copied().unwrap_or(segments[segments.len() - 1]);
                    let p = last.position(last.t1);
                    let span = (last.t1 - last.t0).max(1.0) * 2.0;
                    Segment { t0: last.t1, t1: last.t1 + span, start: p, vel: Point::ORIGIN }
                }
            }
        }
    }

    /// Ensures segments cover time `t`.
    fn ensure_time(&mut self, t: f64) {
        while self.segs.back().is_none_or(|s| s.t1 < t) {
            let seg = self.generate_next();
            self.segs.push_back(seg);
        }
    }

    /// Index of the segment covering time `t`, using the cursor hint
    /// (amortized O(1) for monotone access patterns).
    fn seg_index(&mut self, t: f64) -> usize {
        self.ensure_time(t);
        if self.cursor >= self.segs.len() || self.segs[self.cursor].t0 > t {
            self.cursor = 0;
        }
        while self.segs[self.cursor].t1 < t {
            self.cursor += 1;
        }
        self.cursor
    }

    /// Position at time `t`. Times may repeat but must not step back past
    /// segments already retired with [`forget_before`](Self::forget_before).
    pub fn position(&mut self, t: f64) -> Point {
        let i = self.seg_index(t);
        self.segs[i].position(t)
    }

    /// Velocity at time `t` (zero at rest).
    pub fn velocity(&mut self, t: f64) -> Point {
        let i = self.seg_index(t);
        self.segs[i].vel
    }

    /// The first time in `[from, until]` at which the trajectory leaves the
    /// closed rectangle `rect`, or `None` if it stays inside.
    pub fn first_exit(&mut self, rect: &Rect, from: f64, until: f64) -> Option<f64> {
        let mut t = from;
        let mut i = self.seg_index(t);
        loop {
            let seg = self.segs[i];
            if let Some(exit) = seg.exit_time(rect, t) {
                return if exit <= until { Some(exit) } else { None };
            }
            if seg.t1 >= until {
                return None;
            }
            t = seg.t1;
            i += 1;
            if i >= self.segs.len() {
                self.ensure_time(t + 1e-12);
                i = self.segs.len() - 1;
                while self.segs[i].t0 > t && i > 0 {
                    i -= 1;
                }
            }
        }
    }

    /// Exact arc length traveled in `[from, to]` (sums `|vel|` over the
    /// covered segments) — used for the paper's cost-per-distance metric
    /// (Figure 7.4a).
    pub fn distance_traveled(&mut self, from: f64, to: f64) -> f64 {
        debug_assert!(from <= to);
        self.ensure_time(to);
        let mut total = 0.0;
        for seg in &self.segs {
            if seg.t1 <= from || seg.t0 >= to {
                continue;
            }
            let a = seg.t0.max(from);
            let b = seg.t1.min(to);
            total += seg.vel.norm() * (b - a);
        }
        total
    }

    /// Discards retained segments that end before `t`, bounding memory.
    pub fn forget_before(&mut self, t: f64) {
        while self.segs.len() > 1 && self.segs.front().is_some_and(|s| s.t1 < t) {
            self.segs.pop_front();
            self.cursor = self.cursor.saturating_sub(1);
        }
    }

    /// Number of retained segments (for memory assertions in tests).
    pub fn retained(&self) -> usize {
        self.segs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_position_interpolates() {
        let s =
            Segment { t0: 1.0, t1: 3.0, start: Point::new(0.0, 0.0), vel: Point::new(0.5, 0.25) };
        assert_eq!(s.position(1.0), Point::new(0.0, 0.0));
        assert_eq!(s.position(2.0), Point::new(0.5, 0.25));
        assert_eq!(s.position(3.0), Point::new(1.0, 0.5));
        // Clamped beyond the span.
        assert_eq!(s.position(5.0), Point::new(1.0, 0.5));
    }

    #[test]
    fn segment_exit_time_basic() {
        let s =
            Segment { t0: 0.0, t1: 10.0, start: Point::new(0.5, 0.5), vel: Point::new(0.1, 0.0) };
        let rect = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        // Hits x = 1.0 at t = 5.
        let exit = s.exit_time(&rect, 0.0).unwrap();
        assert!((exit - 5.0).abs() < 1e-12);
        // Starting the query later still yields 5.
        assert!((s.exit_time(&rect, 3.0).unwrap() - 5.0).abs() < 1e-12);
        // After the exit, the position is already outside.
        assert_eq!(s.exit_time(&rect, 6.0), Some(6.0));
    }

    #[test]
    fn segment_no_exit_when_contained() {
        let s =
            Segment { t0: 0.0, t1: 1.0, start: Point::new(0.5, 0.5), vel: Point::new(0.1, 0.1) };
        let rect = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        assert_eq!(s.exit_time(&rect, 0.0), None);
        // Stationary segment never exits.
        let still = Segment { vel: Point::ORIGIN, ..s };
        assert_eq!(still.exit_time(&rect, 0.0), None);
    }

    #[test]
    fn waypoint_is_deterministic_and_in_space() {
        let cfg = MobilityConfig::default();
        let mut a = Trajectory::random_waypoint(99, 5, cfg, 0.0);
        let mut b = Trajectory::random_waypoint(99, 5, cfg, 0.0);
        for i in 0..200 {
            let t = i as f64 * 0.01;
            let pa = a.position(t);
            assert_eq!(pa, b.position(t), "determinism at t={t}");
            assert!(cfg.space.inflate(1e-9).contains_point(pa), "escaped space at t={t}: {pa:?}");
        }
    }

    #[test]
    fn waypoint_speed_bounded() {
        let cfg = MobilityConfig { mean_speed: 0.02, ..Default::default() };
        let mut t = Trajectory::random_waypoint(7, 3, cfg, 0.0);
        let mut prev = t.position(0.0);
        for i in 1..2000 {
            let now = i as f64 * 0.01;
            let p = t.position(now);
            let v = prev.dist(p) / 0.01;
            assert!(v <= cfg.max_speed() + 1e-9, "speed {v} exceeds bound");
            prev = p;
        }
    }

    #[test]
    fn different_ids_differ() {
        let cfg = MobilityConfig::default();
        let mut a = Trajectory::random_waypoint(1, 0, cfg, 0.0);
        let mut b = Trajectory::random_waypoint(1, 1, cfg, 0.0);
        assert_ne!(a.position(0.0), b.position(0.0));
    }

    #[test]
    fn first_exit_matches_fine_sampling() {
        let cfg = MobilityConfig { mean_speed: 0.05, mean_period: 0.2, ..Default::default() };
        for id in 0..20u64 {
            let mut traj = Trajectory::random_waypoint(1234, id, cfg, 0.0);
            let p0 = traj.position(0.0);
            let sr = Rect::centered(p0, 0.01, 0.015).intersection(&Rect::UNIT).unwrap();
            let exit = traj.first_exit(&sr, 0.0, 50.0);
            // Cross-check by sampling.
            let mut sampled = None;
            let mut t = 0.0;
            while t <= 50.0 {
                if !sr.contains_point(traj.position(t)) {
                    sampled = Some(t);
                    break;
                }
                t += 0.001;
            }
            match (exit, sampled) {
                (Some(e), Some(s)) => {
                    assert!(e <= s + 1e-9, "exit {e} after sampled escape {s} (id {id})");
                    assert!(s - e <= 0.002, "exit {e} far before sampled {s} (id {id})");
                }
                (Some(e), None) => {
                    // Exit right at the horizon boundary can be missed by
                    // the sampler; tolerate only that.
                    assert!(e > 49.9, "analytic exit {e} never sampled (id {id})");
                }
                (None, Some(s)) => panic!("missed exit at {s} (id {id})"),
                (None, None) => {}
            }
        }
    }

    #[test]
    fn scripted_trajectory_replays() {
        let segs = vec![
            Segment { t0: 0.0, t1: 1.0, start: Point::new(0.0, 0.0), vel: Point::new(1.0, 0.0) },
            Segment { t0: 1.0, t1: 2.0, start: Point::new(1.0, 0.0), vel: Point::new(0.0, 1.0) },
        ];
        let mut t = Trajectory::scripted(segs);
        assert_eq!(t.position(0.5), Point::new(0.5, 0.0));
        assert_eq!(t.position(1.5), Point::new(1.0, 0.5));
        // Holds the final position forever after.
        assert_eq!(t.position(10.0), Point::new(1.0, 1.0));
    }

    #[test]
    fn forget_before_bounds_memory() {
        let cfg = MobilityConfig { mean_period: 0.002, ..Default::default() };
        let mut traj = Trajectory::random_waypoint(5, 0, cfg, 0.0);
        for i in 0..5000 {
            let t = i as f64 * 0.01;
            let _ = traj.position(t);
            traj.forget_before(t - 0.05);
            assert!(traj.retained() < 200, "memory unbounded: {}", traj.retained());
        }
    }

    #[test]
    fn velocity_reports_segment_direction() {
        let segs = vec![Segment {
            t0: 0.0,
            t1: 5.0,
            start: Point::new(0.0, 0.0),
            vel: Point::new(0.3, -0.1),
        }];
        let mut t = Trajectory::scripted(segs);
        assert_eq!(t.velocity(2.0), Point::new(0.3, -0.1));
        assert_eq!(t.velocity(9.0), Point::ORIGIN);
    }
}

#[cfg(test)]
mod distance_tests {
    use super::*;

    #[test]
    fn distance_traveled_matches_speed_times_time() {
        let segs = vec![Segment {
            t0: 0.0,
            t1: 10.0,
            start: Point::new(0.0, 0.0),
            vel: Point::new(0.3, 0.4), // speed 0.5
        }];
        let mut t = Trajectory::scripted(segs);
        assert!((t.distance_traveled(0.0, 10.0) - 5.0).abs() < 1e-12);
        assert!((t.distance_traveled(2.0, 4.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distance_traveled_spans_segments() {
        let segs = vec![
            Segment { t0: 0.0, t1: 1.0, start: Point::new(0.0, 0.0), vel: Point::new(1.0, 0.0) },
            Segment { t0: 1.0, t1: 2.0, start: Point::new(1.0, 0.0), vel: Point::new(0.0, 2.0) },
        ];
        let mut t = Trajectory::scripted(segs);
        assert!((t.distance_traveled(0.5, 1.5) - (0.5 + 1.0)).abs() < 1e-12);
    }
}
