//! # srb-mobility
//!
//! Moving-object substrate for the SRB monitoring framework: the random
//! waypoint mobility model used throughout the paper's evaluation (§7.1),
//! deterministic piecewise-linear [`Trajectory`] generation with analytic
//! safe-region exit times, and the client-side protocol logic
//! ([`MobileClient`]) — report exactly on safe-region exit, stay silent
//! while awaiting the server's response. Over an unreliable channel the
//! client stamps reports with sequence numbers and retransmits
//! unacknowledged ones under a [`RetryPolicy`] (exponential backoff); the
//! server's safe-region grant doubles as the ACK.
//!
//! Everything is seeded and reproducible: the same `(seed, id)` pair always
//! yields the same trajectory.

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod client;
mod waypoint;

pub use client::{ClientState, MobileClient, PendingReport, RetryPolicy};
pub use waypoint::{MobilityConfig, Segment, Trajectory};
