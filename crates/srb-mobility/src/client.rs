//! Mobile-client logic: the *entire* client-side protocol of the framework.
//!
//! A client knows only its own trajectory and the safe region the server
//! last sent it. It issues a source-initiated update exactly when it leaves
//! the safe region (§1). Under communication delay the client goes *pending*
//! after sending an update and stays silent until the fresh safe region
//! arrives (the paper's §7.2 delay model).

use crate::waypoint::Trajectory;
use srb_geom::{Point, Rect};

/// Client protocol state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ClientState {
    /// No safe region yet (not registered with the server).
    Unregistered,
    /// Holding a safe region; reports on exit.
    Tracking,
    /// Update sent; awaiting the server's new safe region.
    Pending,
}

/// Retry discipline for unacknowledged exit reports sent over an
/// unreliable channel: the first retransmission fires `timeout` after the
/// original send, and each further one doubles the wait (exponential
/// backoff) up to `max_retries` attempts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Base retransmission timeout (time units after the previous send).
    pub timeout: f64,
    /// Maximum number of retransmissions per report.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { timeout: 0.25, max_retries: 6 }
    }
}

impl RetryPolicy {
    /// Wait before retransmission number `attempt` (1-based), measured from
    /// the previous transmission: `timeout · 2^(attempt-1)`, capped to avoid
    /// overflow on absurd attempt counts.
    pub fn backoff(&self, attempt: u32) -> f64 {
        self.timeout * (1u64 << attempt.saturating_sub(1).min(20)) as f64
    }
}

/// An exit report the client has sent but not yet seen acknowledged (the
/// server's safe-region grant doubles as the ACK).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PendingReport {
    /// The reported position.
    pub pos: Point,
    /// The client-assigned sequence number of the report.
    pub seq: u64,
}

/// A simulated mobile client.
pub struct MobileClient {
    /// Identifier matching the server-side object id.
    pub id: u32,
    trajectory: Trajectory,
    safe_region: Option<Rect>,
    state: ClientState,
    last_seq: u64,
    inflight: Option<PendingReport>,
}

impl MobileClient {
    /// Creates a client following `trajectory`.
    pub fn new(id: u32, trajectory: Trajectory) -> Self {
        MobileClient {
            id,
            trajectory,
            safe_region: None,
            state: ClientState::Unregistered,
            last_seq: 0,
            inflight: None,
        }
    }

    /// True position at time `t` (what GPS would report).
    pub fn position(&mut self, t: f64) -> Point {
        self.trajectory.position(t)
    }

    /// Velocity at time `t`.
    pub fn velocity(&mut self, t: f64) -> Point {
        self.trajectory.velocity(t)
    }

    /// Current protocol state.
    pub fn state(&self) -> ClientState {
        self.state
    }

    /// The safe region the client currently holds.
    pub fn safe_region(&self) -> Option<Rect> {
        self.safe_region
    }

    /// Installs a safe region received from the server at time `t`. The
    /// grant also acknowledges any in-flight exit report (retransmissions
    /// stop). Returns `false` when the client has already left it (possible
    /// under communication delay, §7.2) — the caller must immediately send
    /// another update.
    pub fn receive_safe_region(&mut self, sr: Rect, t: f64) -> bool {
        self.inflight = None;
        let pos = self.trajectory.position(t);
        self.safe_region = Some(sr);
        if sr.contains_point(pos) {
            self.state = ClientState::Tracking;
            true
        } else {
            self.state = ClientState::Pending;
            false
        }
    }

    /// Marks the client as having sent an update (it stops self-reporting
    /// until a new safe region arrives).
    pub fn mark_pending(&mut self) {
        self.state = ClientState::Pending;
    }

    /// Records a freshly sent exit report: assigns it the next sequence
    /// number, remembers it for retransmission until acknowledged, and puts
    /// the client in the pending state. Returns the assigned sequence
    /// number. Retransmissions reuse [`pending_report`](Self::pending_report)
    /// verbatim instead of calling this again.
    pub fn send_report(&mut self, pos: Point) -> u64 {
        self.last_seq += 1;
        self.inflight = Some(PendingReport { pos, seq: self.last_seq });
        self.state = ClientState::Pending;
        self.last_seq
    }

    /// The report awaiting acknowledgment, if any — the payload a
    /// retransmission must resend unchanged.
    pub fn pending_report(&self) -> Option<PendingReport> {
        self.inflight
    }

    /// Highest sequence number assigned so far.
    pub fn last_seq(&self) -> u64 {
        self.last_seq
    }

    /// The next time in `(from, until]` the client would issue a
    /// source-initiated update: the first exit from its safe region.
    /// `None` while unregistered or pending, or when it stays inside.
    pub fn next_report(&mut self, from: f64, until: f64) -> Option<f64> {
        if self.state != ClientState::Tracking {
            return None;
        }
        let sr = self.safe_region?;
        self.trajectory.first_exit(&sr, from, until)
    }

    /// Releases trajectory history older than `t`.
    pub fn forget_before(&mut self, t: f64) {
        self.trajectory.forget_before(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waypoint::Segment;

    fn straight_client() -> MobileClient {
        // Moves right at speed 0.1 from (0.1, 0.5).
        let segs = vec![Segment {
            t0: 0.0,
            t1: 100.0,
            start: Point::new(0.1, 0.5),
            vel: Point::new(0.1, 0.0),
        }];
        MobileClient::new(0, Trajectory::scripted(segs))
    }

    #[test]
    fn unregistered_client_never_reports() {
        let mut c = straight_client();
        assert_eq!(c.state(), ClientState::Unregistered);
        assert_eq!(c.next_report(0.0, 100.0), None);
    }

    #[test]
    fn tracking_client_reports_on_exit() {
        let mut c = straight_client();
        let sr = Rect::new(Point::new(0.0, 0.4), Point::new(0.3, 0.6));
        assert!(c.receive_safe_region(sr, 0.0));
        assert_eq!(c.state(), ClientState::Tracking);
        // Exits at x = 0.3: t = (0.3 - 0.1) / 0.1 = 2.0.
        let t = c.next_report(0.0, 100.0).unwrap();
        assert!((t - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pending_client_is_silent() {
        let mut c = straight_client();
        let sr = Rect::new(Point::new(0.0, 0.4), Point::new(0.3, 0.6));
        c.receive_safe_region(sr, 0.0);
        c.mark_pending();
        assert_eq!(c.next_report(0.0, 100.0), None);
    }

    #[test]
    fn delayed_safe_region_can_be_stale() {
        let mut c = straight_client();
        // At t = 5 the client is at x = 0.6; a safe region around the old
        // position no longer contains it.
        let stale = Rect::new(Point::new(0.0, 0.4), Point::new(0.3, 0.6));
        assert!(!c.receive_safe_region(stale, 5.0));
        assert_eq!(c.state(), ClientState::Pending);
        // A fresh one does.
        let fresh = Rect::new(Point::new(0.5, 0.4), Point::new(0.8, 0.6));
        assert!(c.receive_safe_region(fresh, 5.0));
        assert_eq!(c.state(), ClientState::Tracking);
    }

    #[test]
    fn send_report_sequences_and_ack_clears() {
        let mut c = straight_client();
        let sr = Rect::new(Point::new(0.0, 0.4), Point::new(0.3, 0.6));
        c.receive_safe_region(sr, 0.0);
        let p = c.position(3.0);
        assert_eq!(c.send_report(p), 1);
        assert_eq!(c.state(), ClientState::Pending);
        assert_eq!(c.pending_report(), Some(PendingReport { pos: p, seq: 1 }));
        // The next grant is the ACK.
        let fresh = Rect::new(Point::new(0.3, 0.4), Point::new(0.6, 0.6));
        c.receive_safe_region(fresh, 3.0);
        assert_eq!(c.pending_report(), None);
        let p6 = c.position(6.0);
        assert_eq!(c.send_report(p6), 2, "sequence keeps rising");
        assert_eq!(c.last_seq(), 2);
    }

    #[test]
    fn retry_backoff_doubles() {
        let p = RetryPolicy { timeout: 0.5, max_retries: 4 };
        assert_eq!(p.backoff(1), 0.5);
        assert_eq!(p.backoff(2), 1.0);
        assert_eq!(p.backoff(3), 2.0);
        assert!(p.backoff(100).is_finite(), "backoff is overflow-capped");
    }

    #[test]
    fn report_window_respected() {
        let mut c = straight_client();
        let sr = Rect::new(Point::new(0.0, 0.4), Point::new(0.3, 0.6));
        c.receive_safe_region(sr, 0.0);
        // Exit at t = 2.0 is outside the window (0, 1].
        assert_eq!(c.next_report(0.0, 1.0), None);
        assert!(c.next_report(0.0, 3.0).is_some());
    }
}
